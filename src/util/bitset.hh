/**
 * @file
 * Dynamically sized bitset for directory presence vectors.
 *
 * The full-map directory of Censier & Feautrier keeps one presence bit
 * per cache per block; the number of caches is a runtime parameter, so
 * std::bitset does not fit.  This is a compact, allocation-light
 * replacement supporting the handful of operations directories need.
 */

#ifndef DIR2B_UTIL_BITSET_HH
#define DIR2B_UTIL_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace dir2b
{

/** Fixed-width-at-construction bit vector. */
class DynBitset
{
  public:
    DynBitset() = default;

    /** Create a bitset of the given width, all bits clear. */
    explicit DynBitset(std::size_t nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {}

    /** Number of bits in the set. */
    std::size_t size() const { return nbits_; }

    /** Set bit i. */
    void
    set(std::size_t i)
    {
        check(i);
        words_[i >> 6] |= 1ULL << (i & 63);
    }

    /** Clear bit i. */
    void
    reset(std::size_t i)
    {
        check(i);
        words_[i >> 6] &= ~(1ULL << (i & 63));
    }

    /** Clear every bit. */
    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Test bit i. */
    bool
    test(std::size_t i) const
    {
        check(i);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words_)
            n += static_cast<std::size_t>(__builtin_popcountll(w));
        return n;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (auto w : words_) {
            if (w)
                return false;
        }
        return true;
    }

    /**
     * Index of the lowest set bit, or size() if none.  Directories use
     * this to find the single owner of a PresentM block.
     */
    std::size_t
    findFirst() const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            if (words_[wi]) {
                return (wi << 6) + static_cast<std::size_t>(
                                       __builtin_ctzll(words_[wi]));
            }
        }
        return nbits_;
    }

    /** Index of the lowest set bit strictly above i, or size(). */
    std::size_t
    findNext(std::size_t i) const
    {
        ++i;
        if (i >= nbits_)
            return nbits_;
        std::size_t wi = i >> 6;
        std::uint64_t w = words_[wi] & (~0ULL << (i & 63));
        for (;;) {
            if (w)
                return (wi << 6) +
                       static_cast<std::size_t>(__builtin_ctzll(w));
            if (++wi >= words_.size())
                return nbits_;
            w = words_[wi];
        }
    }

    bool
    operator==(const DynBitset &other) const
    {
        return nbits_ == other.nbits_ && words_ == other.words_;
    }

  private:
    void
    check([[maybe_unused]] std::size_t i) const
    {
        DIR2B_ASSERT(i < nbits_, "DynBitset index ", i, " out of range ",
                     nbits_);
    }

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace dir2b

#endif // DIR2B_UTIL_BITSET_HH
