#include "util/parse_args.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace dir2b
{

std::uint64_t
parseScaledUint(const char *s, const char *flag, const char *noun)
{
    // strtoull silently accepts a leading '-' (wrapping the value) and
    // clamps out-of-range digits to ULLONG_MAX with errno=ERANGE; both
    // would turn a typo into a near-infinite budget, so reject them
    // explicitly.
    const char *digits = s;
    while (*digits == ' ' || *digits == '\t')
        ++digits;
    if (*digits == '-' || *digits == '+')
        DIR2B_FATAL(flag, ": '", s, "' is not an unsigned ", noun);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s)
        DIR2B_FATAL(flag, ": '", s, "' is not a valid ", noun);
    if (errno == ERANGE)
        DIR2B_FATAL(flag, ": '", s, "' overflows a 64-bit ", noun);
    std::uint64_t mult = 1;
    if (*end == 'k' || *end == 'K')
        mult = 1ULL << 10, ++end;
    else if (*end == 'm' || *end == 'M')
        mult = 1ULL << 20, ++end;
    else if (*end == 'g' || *end == 'G')
        mult = 1ULL << 30, ++end;
    if (*end != '\0')
        DIR2B_FATAL(flag, ": trailing junk in '", s,
                    "' (suffixes: k/K, m/M, g/G)");
    constexpr std::uint64_t limit =
        std::min<std::uint64_t>(std::numeric_limits<std::uint64_t>::max(),
                                std::numeric_limits<std::size_t>::max());
    if (v > limit / mult)
        DIR2B_FATAL(flag, ": '", s, "' overflows size_t (", v,
                    " * ", mult, ")");
    return static_cast<std::uint64_t>(v) * mult;
}

std::uint64_t
parseByteSize(const char *s, const char *flag)
{
    return parseScaledUint(s, flag, "byte count");
}

std::uint64_t
parseInterval(const char *s, const char *flag)
{
    const std::uint64_t v = parseScaledUint(s, flag, "interval");
    if (v == 0)
        DIR2B_FATAL(flag, ": interval must be at least 1");
    return v;
}

} // namespace dir2b
