/**
 * @file
 * Parallel experiment-sweep runner.
 *
 * The bench/ grids (protocols x workloads x processor counts) are
 * embarrassingly parallel across cells, and every cell is seeded
 * explicitly, so a sweep is deterministic no matter how its cells are
 * scheduled.  This module supplies the machinery:
 *
 *  - ThreadPool: a fixed set of workers draining a *bounded* task
 *    queue (submit() blocks while the queue is full, so a producer
 *    can never race ahead unboundedly); wait() drains the pool and
 *    rethrows the first task exception.
 *  - parallelFor(): an indexed loop over [begin, end) whose bodies
 *    self-schedule off a shared atomic counter (dynamic load
 *    balancing); the caller supplies a body that writes results into
 *    its own index's slot, which is what makes a sweep's output
 *    independent of the thread count.  Nested parallelFor() calls are
 *    rejected (std::logic_error) — sweeps parallelise at cell
 *    granularity only.
 *  - taskRng(): an independent per-task Rng derived through the
 *    xoshiro256** stream split, a pure function of (seed, task), so
 *    stochastic cells stay bit-identical at any thread count.
 *
 * The pool width defaults to $DIR2B_THREADS, or else the hardware
 * concurrency; setDefaultThreadCount() (the CLI's --threads) overrides
 * both.
 */

#ifndef DIR2B_UTIL_PARALLEL_HH
#define DIR2B_UTIL_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/random.hh"

namespace dir2b
{

/** Threads the machine offers (never 0). */
unsigned hardwareThreads();

/**
 * The pool width used when a caller passes threads = 0: the
 * setDefaultThreadCount() override if set, else $DIR2B_THREADS if set
 * and positive, else hardwareThreads().
 */
unsigned defaultThreadCount();

/** Override defaultThreadCount(); 0 restores the env/hardware rule. */
void setDefaultThreadCount(unsigned n);

/** Fixed-width worker pool over a bounded task queue. */
class ThreadPool
{
  public:
    /** @param numThreads worker count (0 = defaultThreadCount())
     *  @param maxQueue   queue bound; submit() blocks when full */
    explicit ThreadPool(unsigned numThreads = 0,
                        std::size_t maxQueue = 1024);

    /** Drains outstanding work, then joins every worker.  Task
     *  exceptions still pending at destruction are swallowed (call
     *  wait() to observe them). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; blocks while the queue is at its bound. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (if any).  The pool stays
     * usable afterwards.
     */
    void wait();

    unsigned numThreads() const { return numThreads_; }

  private:
    void workerLoop();

    unsigned numThreads_;
    std::size_t maxQueue_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t outstanding_ = 0; ///< queued + running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(i) for every i in [begin, end) across a worker pool.
 *
 * Iterations self-schedule from a shared counter, so the assignment
 * of iterations to threads is nondeterministic — the body must write
 * only to state owned by its own index.  Blocks until every iteration
 * finished; rethrows the first exception a body raised (remaining
 * iterations are abandoned).  threads = 0 uses defaultThreadCount();
 * threads = 1 runs inline on the caller.  Calling parallelFor from
 * inside a parallelFor body throws std::logic_error.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0);

/**
 * An independent Rng for task number `task` of a sweep seeded with
 * `seed`: the task index is folded into the seed and the stream is
 * then split, exactly as per-processor streams are derived elsewhere.
 * Pure function of (seed, task) — identical at any thread count.
 */
Rng taskRng(std::uint64_t seed, std::uint64_t task);

/**
 * Persistent worker gang for the sharded timed run's epoch loop.
 *
 * A sharded run calls run() once per epoch — typically tens of
 * thousands of times — so unlike ThreadPool the workers are spawned
 * once and reused, and each run() is a plain generation-counter
 * rendezvous: the caller bumps the generation, participates in the
 * work itself, and returns only after every worker has finished its
 * share.  Shards self-schedule off an atomic counter (any assignment
 * is fine: each shard's state is touched by exactly one thread per
 * epoch, and the mutex hand-offs order epoch k's work before the
 * barrier merge and the merge before epoch k+1).
 *
 * With width 1 (the default on a single-core host) run() executes
 * inline on the caller with zero synchronisation, so a 1-worker
 * sharded run pays no threading tax.
 */
class ShardGang
{
  public:
    /** @param width total workers including the caller (0 = min of
     *  defaultThreadCount() and the task count of the first run). */
    explicit ShardGang(unsigned width);
    ~ShardGang();

    ShardGang(const ShardGang &) = delete;
    ShardGang &operator=(const ShardGang &) = delete;

    /** Run fn(i) for every i in [0, tasks); blocks until all done.
     *  Rethrows the first exception any body raised. */
    void run(unsigned tasks, const std::function<void(unsigned)> &fn);

    /** Total workers, including the calling thread. */
    unsigned width() const { return width_; }

  private:
    void workerLoop();
    void drain();

    unsigned width_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable start_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool stopping_ = false;
    const std::function<void(unsigned)> *fn_ = nullptr;
    unsigned tasks_ = 0;
    std::atomic<unsigned> next_{0};
    std::exception_ptr firstError_;
};

} // namespace dir2b

#endif // DIR2B_UTIL_PARALLEL_HH
