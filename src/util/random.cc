#include "util/random.hh"

#include <cmath>

namespace dir2b
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    // Expand the seed through SplitMix64; guarantees a nonzero state.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    DIR2B_ASSERT(bound > 0, "Rng::range with zero bound");
    // Debiased modulo (Lemire-style rejection on the low word).
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::geometric(double p)
{
    DIR2B_ASSERT(p > 0.0 && p <= 1.0, "geometric parameter out of range");
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::split()
{
    Rng child(0);
    // Derive the child state from fresh draws so parent and child
    // streams are decorrelated.
    for (auto &word : child.s_)
        word = next() | 1;
    return child;
}

} // namespace dir2b
