/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in dir2b (synthetic reference generators,
 * random replacement, randomised tests) draws from an explicitly seeded
 * Rng so that a run is reproducible from its configuration alone.  The
 * generator is xoshiro256**, seeded through SplitMix64 as its authors
 * recommend.
 */

#ifndef DIR2B_UTIL_RANDOM_HH
#define DIR2B_UTIL_RANDOM_HH

#include <cstdint>

#include "util/logging.hh"

namespace dir2b
{

/** xoshiro256** pseudo-random generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; distinct seeds give distinct
     *  well-mixed streams. */
    explicit Rng(std::uint64_t seed = 0x2b2b2b2bULL) { reseed(seed); }

    /** Reset the stream to a fresh seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric draw: number of failures before the first success with
     * per-trial probability p.  Used for run lengths in reference
     * generators.
     */
    std::uint64_t geometric(double p);

    /** Split off an independent child stream (for per-processor use). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace dir2b

#endif // DIR2B_UTIL_RANDOM_HH
