/**
 * @file
 * Shared command-line value parsing.
 *
 * Every byte-size knob (--dir-ram-budget, --trace-buffer) and every
 * count/interval knob (--series-interval) across the benches, the CLI
 * and the tools accepts the same grammar: an unsigned decimal number
 * with an optional K/M/G (KiB/MiB/GiB — binary, case insensitive)
 * suffix.  The parser lives here, once, so a hardened corner case
 * (negative wrap, ERANGE clamp, post-multiply overflow) is fixed for
 * every consumer at the same time.
 */

#ifndef DIR2B_UTIL_PARSE_ARGS_HH
#define DIR2B_UTIL_PARSE_ARGS_HH

#include <cstdint>

namespace dir2b
{

/**
 * Parse an unsigned count with an optional K/M/G (1024-based, case
 * insensitive) suffix — "256M", "1g", "4096".  Fatal (naming `flag`,
 * describing the value as `noun`) on anything else, including
 * negative values and counts that overflow size_t after the suffix
 * multiply.
 */
std::uint64_t parseScaledUint(const char *s, const char *flag,
                              const char *noun);

/** parseScaledUint for byte counts (--dir-ram-budget,
 *  --trace-buffer); zero is allowed (conventionally "unlimited"). */
std::uint64_t parseByteSize(const char *s, const char *flag);

/** parseScaledUint for sampling intervals (--series-interval):
 *  same grammar, but zero is rejected — a sampler cannot advance by
 *  zero references or ticks. */
std::uint64_t parseInterval(const char *s, const char *flag);

} // namespace dir2b

#endif // DIR2B_UTIL_PARSE_ARGS_HH
