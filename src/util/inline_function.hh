/**
 * @file
 * Small-buffer-optimised, move-only callable for the event kernel.
 *
 * std::function heap-allocates any capture larger than its (tiny,
 * implementation-defined) internal buffer and drags in RTTI and copy
 * machinery the simulator never uses.  Every event callback in dir2b
 * is invoked exactly once, never copied, and captures a handful of
 * words (a controller pointer, a Message, an address), so the kernel
 * stores callables inline in the event node itself.
 *
 * InlineFunction is deliberately minimal: void() signature, move-only,
 * a fixed inline capacity, and a heap fallback for oversized captures
 * (counted globally so tests can assert the hot paths never take it).
 */

#ifndef DIR2B_UTIL_INLINE_FUNCTION_HH
#define DIR2B_UTIL_INLINE_FUNCTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace dir2b
{

namespace detail
{

/** Process-wide count of captures that exceeded the inline buffer.
 *  Atomic because parallel sweeps run one EventQueue per thread. */
inline std::atomic<std::uint64_t> inlineFnHeapFallbacks{0};

} // namespace detail

/** Move-only void() callable with Capacity bytes of inline storage. */
template <std::size_t Capacity>
class InlineFunction
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f)
    {
        assign(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>>>
    InlineFunction &
    operator=(F &&f)
    {
        destroy();
        assign(std::forward<F>(f));
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the stored callable (must be non-empty). */
    void
    operator()()
    {
        ops_->invoke(target());
    }

    /** Drop the stored callable, returning to the empty state. */
    void
    reset()
    {
        destroy();
        ops_ = nullptr;
    }

    static constexpr std::size_t capacity() { return Capacity; }

    /** Captures that were too large for the inline buffer so far. */
    static std::uint64_t
    heapFallbacks()
    {
        return detail::inlineFnHeapFallbacks.load(
            std::memory_order_relaxed);
    }

  private:
    /** Manual vtable: one static instance per stored callable type. */
    struct Ops
    {
        void (*invoke)(void *);
        /** Move the callable between nodes; src is left destroyed. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        bool heap;
    };

    template <typename F>
    static constexpr Ops
    makeInlineOps()
    {
        return Ops{
            [](void *p) { (*static_cast<F *>(p))(); },
            [](void *dst, void *src) {
                ::new (dst) F(std::move(*static_cast<F *>(src)));
                static_cast<F *>(src)->~F();
            },
            [](void *p) { static_cast<F *>(p)->~F(); },
            false,
        };
    }

    template <typename F>
    static constexpr Ops
    makeHeapOps()
    {
        return Ops{
            [](void *p) { (**static_cast<F **>(p))(); },
            [](void *dst, void *src) {
                *static_cast<F **>(dst) = *static_cast<F **>(src);
            },
            [](void *p) { delete *static_cast<F **>(p); },
            true,
        };
    }

    template <typename F>
    void
    assign(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &>,
                      "InlineFunction target must be callable");
        if constexpr (sizeof(Fn) <= Capacity &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            static constexpr Ops ops = makeInlineOps<Fn>();
            ::new (target()) Fn(std::forward<F>(f));
            ops_ = &ops;
        } else {
            static constexpr Ops ops = makeHeapOps<Fn>();
            *reinterpret_cast<Fn **>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &ops;
            detail::inlineFnHeapFallbacks.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    void *target() { return buf_; }

    void
    destroy()
    {
        if (ops_)
            ops_->destroy(target());
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(target(), other.target());
        other.ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace dir2b

#endif // DIR2B_UTIL_INLINE_FUNCTION_HH
