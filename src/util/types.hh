/**
 * @file
 * Fundamental scalar types shared by every dir2b module.
 *
 * All addresses in dir2b are *block* addresses: the unit of coherence is
 * the cache block (line), exactly as in Archibald & Baer (ISCA 1984),
 * where the directory keeps one two-bit entry per memory block.  Byte
 * offsets within a block (the paper's displacement "d") never influence
 * coherence decisions, so they are not represented.
 */

#ifndef DIR2B_UTIL_TYPES_HH
#define DIR2B_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace dir2b
{

/** Simulated time, in cycles of the discrete-event kernel. */
using Tick = std::uint64_t;

/** Block-granular memory address (a block id, not a byte address). */
using Addr = std::uint64_t;

/** Index of a processor-cache pair (P_k - C_k in the paper's Fig. 3-1). */
using ProcId = std::uint32_t;

/** Index of a memory-module/controller pair (K_j - M_j in Fig. 3-1). */
using ModuleId = std::uint32_t;

/** Contents of one memory block, modelled as a single 64-bit word. */
using Value = std::uint64_t;

/** Sentinel for "no processor". */
constexpr ProcId invalidProc = std::numeric_limits<ProcId>::max();

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / "not scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/**
 * Deterministic initial contents of a memory block.
 *
 * Every component that needs the pristine value of a block (backing
 * store, coherence oracle) derives it from this function, so a freshly
 * built system is coherent by construction without materialising the
 * whole address space.
 */
constexpr Value
initialValue(Addr a)
{
    // SplitMix64 finalizer: distinct, well-mixed value per block.
    Value z = a + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace dir2b

#endif // DIR2B_UTIL_TYPES_HH
