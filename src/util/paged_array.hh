/**
 * @file
 * Sparse array of trivially-copyable elements, stored in dense pages.
 *
 * The two-bit directory's natural shape is a dense array indexed by
 * block number — the paper's whole point is that the entry is two
 * bits, so the directory should cost array indexing, not hashing.
 * Address spaces are sparse, though, so pages (2^PageBits elements)
 * materialise on first write and untouched regions cost nothing.
 *
 * The page directory is a FlatMap from page index to page slot, so a
 * lookup is one cheap hash probe plus one dense index — and repeated
 * touches to the same page (the common case: reference streams are
 * local) hit a one-entry inline cache and skip the probe entirely.
 */

#ifndef DIR2B_UTIL_PAGED_ARRAY_HH
#define DIR2B_UTIL_PAGED_ARRAY_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/flat_map.hh"

namespace dir2b
{

/** Sparse array of T in dense zero-initialised pages. */
template <typename T, unsigned PageBits>
class PagedArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "PagedArray elements must be trivially copyable");

  public:
    static constexpr std::size_t pageElems = std::size_t{1} << PageBits;

    /** Element at idx, or a value-initialised T if never touched. */
    T
    get(std::uint64_t idx) const
    {
        const T *page = findPage(idx >> PageBits);
        return page ? page[idx & (pageElems - 1)] : T{};
    }

    /** Mutable element at idx; materialises its page zero-filled. */
    T &
    ref(std::uint64_t idx)
    {
        return materialise(idx >> PageBits)[idx & (pageElems - 1)];
    }

    /** Number of materialised pages. */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    const T *
    findPage(std::uint64_t pageIdx) const
    {
        if (pageIdx == cachedIdx_)
            return cached_;
        auto it = dir_.find(pageIdx);
        if (it == dir_.end())
            return nullptr;
        cachedIdx_ = pageIdx;
        cached_ = pages_[it->second].get();
        return cached_;
    }

    T *
    materialise(std::uint64_t pageIdx)
    {
        if (pageIdx == cachedIdx_)
            return const_cast<T *>(cached_);
        auto [it, fresh] = dir_.tryEmplace(pageIdx, pages_.size());
        if (fresh) {
            pages_.push_back(std::make_unique<T[]>(pageElems));
        }
        cachedIdx_ = pageIdx;
        cached_ = pages_[it->second].get();
        return pages_[it->second].get();
    }

    FlatMap<std::uint64_t, std::size_t> dir_;
    std::vector<std::unique_ptr<T[]>> pages_;

    /** One-entry lookup cache (page pointers are stable). */
    mutable std::uint64_t cachedIdx_ = ~std::uint64_t{0};
    mutable const T *cached_ = nullptr;
};

} // namespace dir2b

#endif // DIR2B_UTIL_PAGED_ARRAY_HH
