#include "util/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "util/logging.hh"

namespace dir2b
{

namespace
{

std::atomic<unsigned> gThreadOverride{0};

/** Set while the current thread is executing a parallelFor body (or
 *  the serial fallback), to reject nested parallelism. */
thread_local bool tlInParallelBody = false;

} // namespace

unsigned
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
defaultThreadCount()
{
    const unsigned o = gThreadOverride.load(std::memory_order_relaxed);
    if (o)
        return o;
    if (const char *env = std::getenv("DIR2B_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
        DIR2B_WARN("ignoring DIR2B_THREADS='", env,
                   "' (want a positive integer)");
    }
    return hardwareThreads();
}

void
setDefaultThreadCount(unsigned n)
{
    gThreadOverride.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned numThreads, std::size_t maxQueue)
    : numThreads_(numThreads ? numThreads : defaultThreadCount()),
      maxQueue_(maxQueue ? maxQueue : 1)
{
    workers_.reserve(numThreads_);
    for (unsigned i = 0; i < numThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Let already-queued work finish so results are never lost,
        // then tell the workers to exit.
        idle_.wait(lock, [this] { return outstanding_ == 0; });
        stopping_ = true;
    }
    notEmpty_.notify_all();
    for (auto &w : workers_)
        w.join();
    if (firstError_)
        DIR2B_WARN("ThreadPool destroyed with an unobserved task "
                   "exception (call wait() to receive it)");
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock, [this] {
            return queue_.size() < maxQueue_ || stopping_;
        });
        if (stopping_)
            throw std::logic_error("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
        ++outstanding_;
    }
    notEmpty_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu_);
        idle_.wait(lock, [this] { return outstanding_ == 0; });
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        notFull_.notify_one();
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --outstanding_;
        }
        idle_.notify_all();
    }
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &fn, unsigned threads)
{
    if (tlInParallelBody)
        throw std::logic_error(
            "nested parallelFor: sweeps parallelise at cell "
            "granularity only");
    if (begin >= end)
        return;

    const std::size_t n = end - begin;
    unsigned width = threads ? threads : defaultThreadCount();
    if (static_cast<std::size_t>(width) > n)
        width = static_cast<unsigned>(n);

    if (width <= 1) {
        tlInParallelBody = true;
        try {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        } catch (...) {
            tlInParallelBody = false;
            throw;
        }
        tlInParallelBody = false;
        return;
    }

    // Iterations self-schedule off `next` (work stealing at index
    // granularity); an exception parks the counter at `end` so the
    // other workers drain quickly.
    std::atomic<std::size_t> next{begin};
    std::mutex errMu;
    std::exception_ptr err;

    auto body = [&] {
        tlInParallelBody = true;
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                break;
            try {
                fn(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (!err)
                        err = std::current_exception();
                }
                next.store(end, std::memory_order_relaxed);
                break;
            }
        }
        tlInParallelBody = false;
    };

    ThreadPool pool(width, /*maxQueue=*/width);
    for (unsigned t = 0; t < width; ++t)
        pool.submit(body);
    pool.wait();

    if (err)
        std::rethrow_exception(err);
}

ShardGang::ShardGang(unsigned width)
    : width_(width ? width : defaultThreadCount())
{
    if (width_ < 1)
        width_ = 1;
    workers_.reserve(width_ - 1);
    for (unsigned i = 0; i + 1 < width_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ShardGang::~ShardGang()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    start_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ShardGang::run(unsigned tasks, const std::function<void(unsigned)> &fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty()) {
        // Single-width gang: no rendezvous, no atomics — the epoch
        // loop of a 1-worker sharded run is an ordinary loop.
        for (unsigned i = 0; i < tasks; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        tasks_ = tasks;
        next_.store(0, std::memory_order_relaxed);
        running_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    start_.notify_all();
    drain(); // the caller is a worker too
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [this] { return running_ == 0; });
        fn_ = nullptr;
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ShardGang::drain()
{
    for (;;) {
        const unsigned i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
            next_.store(tasks_, std::memory_order_relaxed);
            return;
        }
    }
}

void
ShardGang::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            start_.wait(lock, [&] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
        }
        drain();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
        }
        done_.notify_all();
    }
}

Rng
taskRng(std::uint64_t seed, std::uint64_t task)
{
    // Fold the task index into the seed with a distinct odd constant,
    // then split, so neighbouring tasks land in decorrelated streams
    // (same recipe as per-processor streams: mix, then split).
    Rng parent(seed ^ (0x9e3779b97f4a7c15ULL * (task + 1)));
    return parent.split();
}

} // namespace dir2b
