/**
 * @file
 * Tiered sparse array: hot raw pages, cold compressed pages, coldest
 * pages spilled to an anonymous on-disk segment.
 *
 * PagedArray made the two-bit directory sparse; this container makes it
 * survive address spaces far larger than RAM, carrying the paper's
 * economy argument (2 bits per block instead of n+1) to its logical
 * conclusion.  Three tiers, all behind PagedArray's get/ref interface:
 *
 *  - **Hot**: raw zero-initialised pages, exactly like PagedArray.  A
 *    one-entry inline cache makes the repeated-touch common case one
 *    compare plus an indexed load.
 *  - **Cold**: pages demoted from the hot tier by a clock
 *    (second-chance) sweep when the RAM budget is exceeded, compressed
 *    in place with run-length encoding.  Directory pages are almost
 *    always homogeneous (`Absent` everywhere, or `Present1` across a
 *    private region), so a page typically collapses to ~13 bytes; a
 *    page that will not compress is kept as a raw copy so the blob is
 *    never materially larger than the page.
 *  - **Disk**: when hot + cold together still exceed the budget, the
 *    oldest cold blobs are appended to an unlinked temporary file
 *    (`std::tmpfile`) and only a {offset, length} index entry stays in
 *    RAM.  If the environment cannot create a temporary file the store
 *    degrades gracefully: blobs stay compressed in RAM and the
 *    overrun is counted, never hidden.
 *
 * A budget of 0 (the default) disables demotion entirely, making the
 * store behave exactly like PagedArray.  All tier movement is fully
 * deterministic — driven only by the access sequence, never by clocks
 * or randomness — so simulations are bit-identical at any budget.
 *
 * Like PagedArray, the store is not thread-safe: reads promote pages
 * and so mutate internal state (get() is const for drop-in
 * compatibility).  References returned by ref() are valid only until
 * the next store operation, which may demote the page.
 */

#ifndef DIR2B_UTIL_TIERED_STORE_HH
#define DIR2B_UTIL_TIERED_STORE_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/flat_map.hh"

namespace dir2b
{

/** Operation counters for one TieredStore (see also the accessors). */
struct TieredStoreStats
{
    std::uint64_t compressions = 0;     ///< hot -> cold demotions
    std::uint64_t decompressions = 0;   ///< cold/disk -> hot promotions
    std::uint64_t diskPageWrites = 0;   ///< cold -> disk spills
    std::uint64_t diskPageReads = 0;    ///< disk -> hot reloads
    std::uint64_t diskBytesWritten = 0; ///< cumulative appended bytes
    std::uint64_t diskBytesRead = 0;    ///< cumulative reloaded bytes
    std::uint64_t budgetOverruns = 0;   ///< times resident > budget stuck
    std::uint64_t diskUnavailable = 0;  ///< tmpfile() failures (0 or 1)
};

/** Sparse tiered array of unsigned words in 2^PageBits-element pages. */
template <typename T, unsigned PageBits>
class TieredStore
{
    static_assert(std::is_unsigned_v<T>,
                  "TieredStore elements must be unsigned integers");
    static_assert(PageBits >= 1 && PageBits <= 15,
                  "RLE run counts are 16-bit");

  public:
    static constexpr std::size_t pageElems = std::size_t{1} << PageBits;
    static constexpr std::size_t rawPageBytes = pageElems * sizeof(T);

    /** budgetBytes caps hot + cold resident bytes; 0 = unlimited. */
    explicit TieredStore(std::uint64_t budgetBytes = 0)
        : budget_(budgetBytes)
    {}

    TieredStore(TieredStore &&) = default;
    TieredStore &operator=(TieredStore &&) = default;

    /** Element at idx, or a value-initialised T if never touched. */
    T
    get(std::uint64_t idx) const
    {
        // Promotion mutates tier state; const for PagedArray drop-in.
        return const_cast<TieredStore *>(this)->getMut(idx);
    }

    /** Mutable element at idx; materialises its page zero-filled.
     *  The reference is valid only until the next store operation. */
    T &
    ref(std::uint64_t idx)
    {
        const std::uint64_t pageIdx = idx >> PageBits;
        if (pageIdx == cachedIdx_) {
            pages_[cachedSlot_].refBit = true;
            return cached_[idx & (pageElems - 1)];
        }
        auto [it, fresh] =
            dir_.tryEmplace(pageIdx, static_cast<std::uint32_t>(pages_.size()));
        if (fresh) {
            pages_.emplace_back();
            Page &pg = pages_.back();
            pg.pageIdx = pageIdx;
            pg.raw = std::make_unique<T[]>(pageElems);
            pg.tier = Tier::Hot;
            hot_.push_back(it->second);
        }
        T *page = promote(it->second);
        return page[idx & (pageElems - 1)];
    }

    /** Number of materialised pages, across all tiers. */
    std::size_t pageCount() const { return pages_.size(); }

    /** Pages currently raw in RAM / compressed in RAM / on disk. */
    std::size_t hotPages() const { return hot_.size(); }
    std::size_t coldPages() const { return coldCount_; }
    std::size_t diskPages() const { return diskCount_; }

    /** Bytes of page data resident in RAM (hot raw + cold blobs). */
    std::uint64_t
    residentBytes() const
    {
        return hot_.size() * rawPageBytes + coldBytes_;
    }

    /** Bytes of compressed (cold, in-RAM) page data. */
    std::uint64_t compressedBytes() const { return coldBytes_; }

    /** Current end offset of the on-disk segment (appended bytes). */
    std::uint64_t segmentBytes() const { return segEnd_; }

    /** The configured RAM budget (0 = unlimited). */
    std::uint64_t budgetBytes() const { return budget_; }

    /** Operation counters. */
    const TieredStoreStats &stats() const { return stats_; }

  private:
    enum class Tier : std::uint8_t { Hot, Cold, Disk };

    struct Page
    {
        std::uint64_t pageIdx = 0;
        std::unique_ptr<T[]> raw;       ///< Hot tier storage
        std::vector<std::uint8_t> blob; ///< Cold tier storage
        std::uint64_t diskOff = 0;      ///< Disk tier location...
        std::uint32_t diskLen = 0;      ///< ...and blob length
        Tier tier = Tier::Hot;
        bool refBit = false; ///< clock second-chance recency bit
    };

    struct FileCloser
    {
        void operator()(std::FILE *f) const { std::fclose(f); }
    };

    T
    getMut(std::uint64_t idx)
    {
        const std::uint64_t pageIdx = idx >> PageBits;
        if (pageIdx == cachedIdx_) {
            pages_[cachedSlot_].refBit = true;
            return cached_[idx & (pageElems - 1)];
        }
        auto it = dir_.find(pageIdx);
        if (it == dir_.end())
            return T{};
        const T *page = promote(it->second);
        return page[idx & (pageElems - 1)];
    }

    /** Bring the page to the hot tier, pin it in the inline cache,
     *  then demote/spill others until the budget holds. */
    T *
    promote(std::uint32_t slot)
    {
        Page &pg = pages_[slot];
        switch (pg.tier) {
          case Tier::Hot:
            break;
          case Tier::Cold:
            pg.raw = decompress(pg.blob.data(), pg.blob.size());
            coldBytes_ -= pg.blob.size();
            --coldCount_;
            pg.blob = {};
            pg.tier = Tier::Hot;
            hot_.push_back(slot);
            ++stats_.decompressions;
            break;
          case Tier::Disk: {
            std::vector<std::uint8_t> blob(pg.diskLen);
            readSegment(pg.diskOff, blob.data(), pg.diskLen);
            pg.raw = decompress(blob.data(), blob.size());
            --diskCount_;
            pg.tier = Tier::Hot;
            hot_.push_back(slot);
            ++stats_.decompressions;
            ++stats_.diskPageReads;
            stats_.diskBytesRead += pg.diskLen;
            break;
          }
        }
        pg.refBit = true;
        cachedIdx_ = pg.pageIdx;
        cachedSlot_ = slot;
        cached_ = pg.raw.get();
        enforceBudget(slot);
        return cached_;
    }

    void
    enforceBudget(std::uint32_t protect)
    {
        if (budget_ == 0)
            return;
        // First demote hot pages (clock sweep) into the cold tier...
        while (residentBytes() > budget_ && hot_.size() > 1)
            demoteOne(protect);
        // ...then spill the oldest cold blobs to the disk segment.
        while (coldBytes_ > 0 && residentBytes() > budget_) {
            if (!spillOne())
                break;
        }
        if (residentBytes() > budget_)
            ++stats_.budgetOverruns;
    }

    /** Clock (second chance) over the hot tier; never evicts
     *  `protect`, which is the page the caller is touching. */
    void
    demoteOne(std::uint32_t protect)
    {
        for (;;) {
            if (hand_ >= hot_.size())
                hand_ = 0;
            const std::uint32_t slot = hot_[hand_];
            Page &pg = pages_[slot];
            if (slot == protect) {
                ++hand_;
                continue;
            }
            if (pg.refBit) {
                pg.refBit = false;
                ++hand_;
                continue;
            }
            pg.blob = compress(pg.raw.get());
            pg.raw.reset();
            pg.tier = Tier::Cold;
            coldBytes_ += pg.blob.size();
            ++coldCount_;
            coldQ_.push_back(slot);
            ++stats_.compressions;
            hot_[hand_] = hot_.back();
            hot_.pop_back();
            return;
        }
    }

    /** Append the oldest still-cold blob to the disk segment.
     *  Returns false when no spill is possible (no tmpfile). */
    bool
    spillOne()
    {
        while (!coldQ_.empty()) {
            const std::uint32_t slot = coldQ_.front();
            Page &pg = pages_[slot];
            if (pg.tier != Tier::Cold) {
                // Promoted (or already spilled) since it was queued.
                coldQ_.pop_front();
                continue;
            }
            if (!ensureSegment())
                return false;
            std::fseek(seg_.get(), 0, SEEK_END);
            const std::size_t len = pg.blob.size();
            if (std::fwrite(pg.blob.data(), 1, len, seg_.get()) != len) {
                // Treat a failed write like an absent disk tier.
                seg_.reset();
                segFailed_ = true;
                ++stats_.diskUnavailable;
                return false;
            }
            pg.diskOff = segEnd_;
            pg.diskLen = static_cast<std::uint32_t>(len);
            segEnd_ += len;
            coldBytes_ -= len;
            --coldCount_;
            ++diskCount_;
            pg.blob = {};
            pg.tier = Tier::Disk;
            coldQ_.pop_front();
            ++stats_.diskPageWrites;
            stats_.diskBytesWritten += len;
            return true;
        }
        return false;
    }

    bool
    ensureSegment()
    {
        if (seg_)
            return true;
        if (segFailed_)
            return false;
        seg_.reset(std::tmpfile());
        if (!seg_) {
            segFailed_ = true;
            ++stats_.diskUnavailable;
            return false;
        }
        return true;
    }

    void
    readSegment(std::uint64_t off, std::uint8_t *out, std::size_t len)
    {
        std::fseek(seg_.get(), static_cast<long>(off), SEEK_SET);
        const std::size_t got = std::fread(out, 1, len, seg_.get());
        // The segment is append-only and written by this object, so a
        // short read can only mean the file was tampered with; zero
        // the tail rather than reading garbage.
        if (got < len)
            std::memset(out + got, 0, len - got);
    }

    // --- compression -----------------------------------------------
    //
    // Blob layout: [tag u8] then
    //   tag 0: raw page copy (rawPageBytes bytes)
    //   tag 1: [nRuns u16] then nRuns x ([count u16][value T])
    // All fields little-endian via memcpy (portable, alignment-free).

    static std::vector<std::uint8_t>
    compress(const T *page)
    {
        // Count runs first so the exact size is allocated once.
        std::size_t nRuns = 1;
        for (std::size_t i = 1; i < pageElems; ++i)
            nRuns += page[i] != page[i - 1];
        const std::size_t rleBytes = 3 + nRuns * (2 + sizeof(T));
        if (rleBytes >= 1 + rawPageBytes) {
            std::vector<std::uint8_t> blob(1 + rawPageBytes);
            blob[0] = 0;
            std::memcpy(blob.data() + 1, page, rawPageBytes);
            return blob;
        }
        std::vector<std::uint8_t> blob(rleBytes);
        blob[0] = 1;
        const auto runs = static_cast<std::uint16_t>(nRuns);
        std::memcpy(blob.data() + 1, &runs, 2);
        std::size_t out = 3;
        std::size_t i = 0;
        while (i < pageElems) {
            std::size_t j = i + 1;
            while (j < pageElems && page[j] == page[i])
                ++j;
            const auto count = static_cast<std::uint16_t>(j - i);
            std::memcpy(blob.data() + out, &count, 2);
            std::memcpy(blob.data() + out + 2, &page[i], sizeof(T));
            out += 2 + sizeof(T);
            i = j;
        }
        return blob;
    }

    static std::unique_ptr<T[]>
    decompress(const std::uint8_t *blob, std::size_t len)
    {
        auto page = std::make_unique<T[]>(pageElems);
        if (len == 0)
            return page;
        if (blob[0] == 0) {
            std::memcpy(page.get(), blob + 1,
                        std::min(len - 1, rawPageBytes));
            return page;
        }
        std::uint16_t nRuns = 0;
        std::memcpy(&nRuns, blob + 1, 2);
        std::size_t in = 3;
        std::size_t out = 0;
        for (std::uint16_t r = 0; r < nRuns && out < pageElems; ++r) {
            std::uint16_t count = 0;
            T value{};
            std::memcpy(&count, blob + in, 2);
            std::memcpy(&value, blob + in + 2, sizeof(T));
            in += 2 + sizeof(T);
            for (std::uint16_t k = 0; k < count && out < pageElems; ++k)
                page[out++] = value;
        }
        return page;
    }

    FlatMap<std::uint64_t, std::uint32_t> dir_;
    std::vector<Page> pages_;

    std::vector<std::uint32_t> hot_; ///< slots in the hot tier
    std::size_t hand_ = 0;           ///< clock hand into hot_
    std::deque<std::uint32_t> coldQ_; ///< spill order (lazy entries)
    std::size_t coldCount_ = 0;
    std::size_t diskCount_ = 0;
    std::uint64_t coldBytes_ = 0;

    std::unique_ptr<std::FILE, FileCloser> seg_;
    std::uint64_t segEnd_ = 0;
    bool segFailed_ = false;

    std::uint64_t budget_;
    TieredStoreStats stats_;

    /** One-entry lookup cache; always pins the last-touched page,
     *  which the clock sweep never evicts. */
    mutable std::uint64_t cachedIdx_ = ~std::uint64_t{0};
    mutable std::uint32_t cachedSlot_ = 0;
    mutable T *cached_ = nullptr;
};

} // namespace dir2b

#endif // DIR2B_UTIL_TIERED_STORE_HH
