/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print
 * reproductions of the paper's tables in the paper's own layout.
 */

#ifndef DIR2B_UTIL_TABLE_HH
#define DIR2B_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dir2b
{

/** Column-aligned text table with an optional title and column rules. */
class TextTable
{
  public:
    /** Create a table whose first row is the header. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a fully formatted row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a separator rule (rendered as dashes). */
    void addRule();

    /** Set a caption printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Format a double with the paper's three-decimal convention. */
    static std::string num(double v, int precision = 3);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::string title_;
    std::size_t width_;
    std::vector<Row> rows_;
};

} // namespace dir2b

#endif // DIR2B_UTIL_TABLE_HH
