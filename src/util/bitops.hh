/**
 * @file
 * Small bit-manipulation helpers used by cache indexing and directories.
 */

#ifndef DIR2B_UTIL_BITOPS_HH
#define DIR2B_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace dir2b
{

/** True if x is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); x must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Ceiling of log2(x); x must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return isPowerOf2(x) ? floorLog2(x) : floorLog2(x) + 1;
}

} // namespace dir2b

#endif // DIR2B_UTIL_BITOPS_HH
