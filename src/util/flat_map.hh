/**
 * @file
 * Open-addressing hash map for the simulator's hot lookup tables.
 *
 * Every directory consultation, busy-window check and backing-store
 * access sits on a map lookup, and std::unordered_map pays a pointer
 * chase per node plus an allocation per insert.  FlatMap stores
 * key/value slots in one contiguous power-of-two array with linear
 * probing and backward-shift deletion (no tombstones), so the common
 * probe touches one or two cache lines and inserts amortise to plain
 * array writes.
 *
 * Contract differences from std::unordered_map that callers must
 * respect (audited across dir2b; see docs/PERFORMANCE.md):
 *
 *  - references and iterators are invalidated by ANY insert or erase
 *    (growth rehashes; backward-shift relocates neighbours);
 *  - iteration order is the probe order, not insertion order — only
 *    order-insensitive walks (invariant checks, diagnostics) may
 *    iterate.
 *
 * Keys are integral (block addresses, chunk indices); hashing is the
 * SplitMix64 finalizer, which is cheap and mixes low bits well enough
 * for power-of-two masking.
 */

#ifndef DIR2B_UTIL_FLAT_MAP_HH
#define DIR2B_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>

#include "util/logging.hh"

namespace dir2b
{

/** Mixes an integral key into a well-distributed 64-bit hash. */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Open-addressing map from an integral key to V. */
template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "FlatMap keys must be integral");

  public:
    using value_type = std::pair<K, V>;

  private:
    /** One slot: raw storage for the pair plus an occupancy flag, so
     *  V needs no default constructor and empty slots cost nothing.
     *  The raw bytes are zero-initialised so the branch-light double
     *  probe in indexOf may read a vacant slot's key bytes without
     *  touching indeterminate memory (the result is discarded via the
     *  used flag). */
    struct Slot
    {
        alignas(value_type) unsigned char raw[sizeof(value_type)] = {};
        bool used = false;

        value_type &kv() { return *reinterpret_cast<value_type *>(raw); }
        const value_type &
        kv() const
        {
            return *reinterpret_cast<const value_type *>(raw);
        }
    };

  public:
    /** Forward iterator over occupied slots (probe order). */
    template <bool Const>
    class Iter
    {
        using SlotPtr = std::conditional_t<Const, const Slot *, Slot *>;
        using Ref = std::conditional_t<Const, const value_type &,
                                       value_type &>;

      public:
        Iter() = default;
        Iter(SlotPtr p, SlotPtr end) : p_(p), end_(end) { skip(); }

        Ref operator*() const { return p_->kv(); }
        auto *operator->() const { return &p_->kv(); }

        Iter &
        operator++()
        {
            ++p_;
            skip();
            return *this;
        }

        bool operator==(const Iter &o) const { return p_ == o.p_; }
        bool operator!=(const Iter &o) const { return p_ != o.p_; }

      private:
        friend class FlatMap;

        void
        skip()
        {
            while (p_ != end_ && !p_->used)
                ++p_;
        }

        SlotPtr p_ = nullptr;
        SlotPtr end_ = nullptr;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    FlatMap(FlatMap &&other) noexcept { swap(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            slots_ = nullptr;
            mask_ = 0;
            size_ = 0;
            swap(other);
        }
        return *this;
    }

    FlatMap(const FlatMap &) = delete;
    FlatMap &operator=(const FlatMap &) = delete;

    ~FlatMap() { destroyAll(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    iterator begin() { return {slots_, slotsEnd()}; }
    iterator end() { return {slotsEnd(), slotsEnd()}; }
    const_iterator begin() const { return {slots_, slotsEnd()}; }
    const_iterator end() const { return {slotsEnd(), slotsEnd()}; }

    iterator
    find(K key)
    {
        const std::size_t i = indexOf(key);
        return i == npos ? end() : iterAt(i);
    }

    const_iterator
    find(K key) const
    {
        const std::size_t i = indexOf(key);
        if (i == npos)
            return end();
        return {slots_ + i, slotsEnd()};
    }

    std::size_t count(K key) const { return indexOf(key) == npos ? 0 : 1; }
    bool contains(K key) const { return indexOf(key) != npos; }

    /** Find or value-initialise (like std::unordered_map::operator[]). */
    V &
    operator[](K key)
    {
        return tryEmplace(key).first->second;
    }

    /** Emplace with constructor args if absent; returns {iter, fresh}. */
    template <typename... Args>
    std::pair<iterator, bool>
    tryEmplace(K key, Args &&...args)
    {
        reserveOne();
        std::size_t i = probeStart(key);
        for (;;) {
            Slot &s = slots_[i];
            if (!s.used) {
                ::new (s.raw) value_type(
                    std::piecewise_construct,
                    std::forward_as_tuple(key),
                    std::forward_as_tuple(std::forward<Args>(args)...));
                s.used = true;
                ++size_;
                return {iterAt(i), true};
            }
            if (s.kv().first == key)
                return {iterAt(i), false};
            i = (i + 1) & mask_;
        }
    }

    /** Insert or overwrite. */
    void
    insertOrAssign(K key, V value)
    {
        auto [it, fresh] = tryEmplace(key, std::move(value));
        if (!fresh)
            it->second = std::move(value);
    }

    /** Erase by key; returns true if an entry was removed. */
    bool
    erase(K key)
    {
        const std::size_t i = indexOf(key);
        if (i == npos)
            return false;
        eraseAt(i);
        return true;
    }

    /** Erase the entry an iterator points at. */
    void
    erase(iterator it)
    {
        DIR2B_ASSERT(it != end(), "FlatMap::erase(end())");
        eraseAt(static_cast<std::size_t>(it.p_ - slots_));
    }

    void
    clear()
    {
        if (!slots_)
            return;
        for (std::size_t i = 0; i <= mask_; ++i) {
            if (slots_[i].used) {
                slots_[i].kv().~value_type();
                slots_[i].used = false;
            }
        }
        size_ = 0;
    }

    /** Bytes of slot storage currently allocated (capacity metric). */
    std::size_t
    capacityBytes() const
    {
        return slots_ ? (mask_ + 1) * sizeof(Slot) : 0;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};
    static constexpr std::size_t minCapacity = 16;

    void
    swap(FlatMap &other) noexcept
    {
        std::swap(slots_, other.slots_);
        std::swap(mask_, other.mask_);
        std::swap(size_, other.size_);
    }

    std::size_t
    probeStart(K key) const
    {
        return static_cast<std::size_t>(
                   mixHash(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    /** Slot index of key, or npos. */
    std::size_t
    indexOf(K key) const
    {
        if (!slots_)
            return npos;
        // Branch-light double probe: at our load factor the answer is
        // in the first two slots for ~95% of lookups, so both are
        // checked unconditionally (bitwise &, no short-circuit) and
        // the index is selected without a data-dependent branch.
        // Mispredicted probe-length branches, not probe count, are
        // what make open addressing lose to chained buckets on
        // lookup-heavy mixes.  Vacant slots hold zero-initialised (or
        // stale destroyed) key bytes, masked off by the used flag.
        const std::size_t i0 = probeStart(key);
        const std::size_t i1 = (i0 + 1) & mask_;
        const Slot &s0 = slots_[i0];
        const Slot &s1 = slots_[i1];
        const auto u0 = static_cast<std::size_t>(s0.used);
        const auto u1 = static_cast<std::size_t>(s1.used);
        const std::size_t m0 =
            u0 & static_cast<std::size_t>(s0.kv().first == key);
        const std::size_t m1 =
            u1 & static_cast<std::size_t>(s1.kv().first == key);
        const std::size_t hit = m0 | m1;
        // One highly-predictable branch: resolved iff a slot matched
        // or a vacancy ends the probe (~99% of lookups).  The result
        // is then selected arithmetically — hit picks i0/i1 via a
        // mask, miss ORs in all-ones, which IS npos.  Written with +
        // so the compiler cannot split it back into two data-dependent
        // jumps.
        if (hit + ((u0 & u1) ^ 1) != 0)
            return (i1 ^ ((i0 ^ i1) & (std::size_t{0} - m0))) |
                   (hit - 1);
        std::size_t i = (i1 + 1) & mask_;
        for (;;) {
            const Slot &s = slots_[i];
            if (!s.used)
                return npos;
            if (s.kv().first == key)
                return i;
            i = (i + 1) & mask_;
        }
    }

    iterator iterAt(std::size_t i) { return {slots_ + i, slotsEnd()}; }

    Slot *slotsEnd() { return slots_ ? slots_ + mask_ + 1 : nullptr; }
    const Slot *slotsEnd() const
    {
        return slots_ ? slots_ + mask_ + 1 : nullptr;
    }

    /** Grow to keep the load factor under 0.75. */
    void
    reserveOne()
    {
        if (!slots_) {
            rehash(minCapacity);
            return;
        }
        if ((size_ + 1) * 4 > (mask_ + 1) * 3)
            rehash((mask_ + 1) * 2);
    }

    void
    rehash(std::size_t newCap)
    {
        Slot *old = slots_;
        const std::size_t oldCap = old ? mask_ + 1 : 0;
        slots_ = new Slot[newCap];
        mask_ = newCap - 1;
        size_ = 0;
        for (std::size_t i = 0; i < oldCap; ++i) {
            if (old[i].used) {
                tryEmplace(old[i].kv().first,
                           std::move(old[i].kv().second));
                old[i].kv().~value_type();
                old[i].used = false;
            }
        }
        delete[] old;
    }

    void
    eraseAt(std::size_t i)
    {
        // Backward-shift deletion: relocate displaced neighbours into
        // the hole so probes never need tombstones.  An entry at j may
        // fill the hole iff its home slot is cyclically at or before
        // the hole (otherwise moving it would break its probe chain).
        std::size_t hole = i;
        slots_[hole].kv().~value_type();
        slots_[hole].used = false;
        std::size_t j = (hole + 1) & mask_;
        while (slots_[j].used) {
            const std::size_t home = probeStart(slots_[j].kv().first);
            if (((j - home) & mask_) >= ((j - hole) & mask_)) {
                ::new (slots_[hole].raw)
                    value_type(std::move(slots_[j].kv()));
                slots_[hole].used = true;
                slots_[j].kv().~value_type();
                slots_[j].used = false;
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        --size_;
    }

    void
    destroyAll()
    {
        clear();
        delete[] slots_;
    }

    Slot *slots_ = nullptr;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/** Open-addressing set of integral keys, built on FlatMap. */
template <typename K>
class FlatSet
{
    struct Empty
    {};

  public:
    void insert(K key) { map_.tryEmplace(key); }
    bool erase(K key) { return map_.erase(key); }
    std::size_t count(K key) const { return map_.count(key); }
    bool contains(K key) const { return map_.contains(key); }
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }

  private:
    FlatMap<K, Empty> map_;
};

} // namespace dir2b

#endif // DIR2B_UTIL_FLAT_MAP_HH
