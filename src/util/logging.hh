/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a dir2b bug.  Aborts.
 * fatal()  - the *user* asked for something impossible (bad config,
 *            malformed trace).  Exits with status 1.
 * warn()   - something questionable happened but simulation continues.
 * inform() - status messages.
 */

#ifndef DIR2B_UTIL_LOGGING_HH
#define DIR2B_UTIL_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace dir2b
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Get the process-wide log level (default: Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** Callback receiving every DIR2B_DEBUG message. */
using DebugSink = std::function<void(const std::string &)>;

/**
 * Install (or clear, with nullptr) a sink that observes every debug
 * message *in addition to* stderr.  The trace recorder routes protocol
 * chatter through this so a --debug run and its trace tell one story.
 * The sink fires regardless of the log level — attaching one turns
 * debug-message materialisation on without the stderr spam.
 */
void setDebugSink(DebugSink sink);

namespace detail
{

/** True when DIR2B_DEBUG must materialise its message at all. */
bool debugEnabled();

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace dir2b

/** Abort with a message: an internal dir2b invariant failed. */
#define DIR2B_PANIC(...)                                                    \
    ::dir2b::detail::panicImpl(__FILE__, __LINE__,                          \
                               ::dir2b::detail::concat(__VA_ARGS__))

/** Exit with a message: the user requested something impossible. */
#define DIR2B_FATAL(...)                                                    \
    ::dir2b::detail::fatalImpl(__FILE__, __LINE__,                          \
                               ::dir2b::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define DIR2B_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dir2b::detail::panicImpl(                                     \
                __FILE__, __LINE__,                                         \
                ::dir2b::detail::concat("assertion failed: " #cond " ",    \
                                        ##__VA_ARGS__));                    \
        }                                                                   \
    } while (0)

/** Non-fatal warning, subject to the log level. */
#define DIR2B_WARN(...)                                                     \
    ::dir2b::detail::warnImpl(::dir2b::detail::concat(__VA_ARGS__))

/** Informational message, subject to the log level. */
#define DIR2B_INFORM(...)                                                   \
    ::dir2b::detail::informImpl(::dir2b::detail::concat(__VA_ARGS__))

/** Debug chatter, subject to the log level (or an installed sink).
 *  The guard keeps message materialisation off the hot path when
 *  nobody is listening. */
#define DIR2B_DEBUG(...)                                                    \
    do {                                                                    \
        if (::dir2b::detail::debugEnabled())                                \
            ::dir2b::detail::debugImpl(                                     \
                ::dir2b::detail::concat(__VA_ARGS__));                      \
    } while (0)

#endif // DIR2B_UTIL_LOGGING_HH
