#include "net/message.hh"

#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

const char *
mnemonic(MsgKind kind)
{
    switch (kind) {
      case MsgKind::Request:
        return "REQUEST";
      case MsgKind::MRequest:
        return "MREQUEST";
      case MsgKind::Eject:
        return "EJECT";
      case MsgKind::BroadInv:
        return "BROADINV";
      case MsgKind::BroadQuery:
        return "BROADQUERY";
      case MsgKind::MGranted:
        return "MGRANTED";
      case MsgKind::GetData:
        return "get";
      case MsgKind::PutData:
        return "put";
      case MsgKind::Invalidate:
        return "INVALIDATE";
      case MsgKind::Purge:
        return "PURGE";
      case MsgKind::InvAck:
        return "INVACK";
    }
    DIR2B_PANIC("unknown MsgKind ", static_cast<int>(kind));
}

std::string
toString(MsgKind kind)
{
    return mnemonic(kind);
}

std::string
toString(const Message &m)
{
    std::ostringstream os;
    os << toString(m.kind) << "(proc=" << m.proc << ",a=" << m.addr;
    switch (m.kind) {
      case MsgKind::Request:
      case MsgKind::Eject:
      case MsgKind::BroadQuery:
      case MsgKind::Purge:
        os << "," << (m.rw == RW::Read ? "read" : "write");
        break;
      case MsgKind::MGranted:
        os << "," << (m.granted ? "yes" : "no");
        break;
      case MsgKind::GetData:
      case MsgKind::PutData:
        os << ",data=" << m.data;
        break;
      default:
        break;
    }
    if (m.broadcast)
        os << ",bcast";
    os << ")";
    return os.str();
}

} // namespace dir2b
