/**
 * @file
 * The command and data-transfer vocabulary of the paper's Table 3-1.
 *
 * Control commands (capitals in the paper) and data transfers (italics
 * in the paper) exchanged between processor-cache pairs (P_k - C_k) and
 * memory-controller/memory pairs (K_j - M_j):
 *
 *   P_k - C_k side          |  C_k - K_j side
 *   ------------------------+---------------------------------
 *   LOAD(a,d)               |  REQUEST(k,a,rw)
 *   STORE(a,d)              |  MREQUEST(k,a)
 *   VALIDHIT(a,h_or_m,b_k)  |  EJECT(k,olda,wb)
 *   ld(a,b_k)               |  put(b_k,olda)
 *   st(a,b_k)               |  SETSTATE(a,st)      [K_j internal]
 *   setmod(b_k)             |  BROADINV(a,k)       [K_j -> all C_i]
 *                           |  BROADQUERY(a,rw)    [K_j -> all C_i]
 *                           |  MGRANTED(k,y_or_n)
 *                           |  get(k,a)
 *                           |  put(b_i,a)
 *
 * The processor-local commands (LOAD/STORE/VALIDHIT/ld/st/setmod) are
 * realised as the Processor/CacheController call interface in the timed
 * tier; the network-visible ones appear here as Message payloads.
 * SETSTATE is a directory-internal action and is modelled as the
 * controllers' state writes (counted, not transmitted).
 */

#ifndef DIR2B_NET_MESSAGE_HH
#define DIR2B_NET_MESSAGE_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace dir2b
{

/** Network-visible message kinds (Table 3-1). */
enum class MsgKind : std::uint8_t
{
    /** REQUEST(k,a,rw): cache k misses block a; rw selects read/write. */
    Request,
    /** MREQUEST(k,a): cache k wants to modify its clean copy of a. */
    MRequest,
    /** EJECT(k,olda,wb): cache k replaces olda; wb selects read/write
     *  (write means a put with the dirty data follows). */
    Eject,
    /** BROADINV(a,k): invalidate a everywhere except cache k. */
    BroadInv,
    /** BROADQUERY(a,rw): the (unknown) owner of a must respond with a
     *  put; rw=read downgrades the owner, rw=write invalidates it. */
    BroadQuery,
    /** MGRANTED(k,y_or_n): reply to MREQUEST. */
    MGranted,
    /** get(k,a): block data from memory controller to cache k. */
    GetData,
    /** put(b,a): block data from a cache to its home controller. */
    PutData,
    /** INVALIDATE(a,i): full-map directed invalidation (the n+1-bit
     *  scheme's selective counterpart of BROADINV). */
    Invalidate,
    /** PURGE(a,i,rw): full-map directed owner query (the selective
     *  counterpart of BROADQUERY). */
    Purge,
    /** INVACK(a,k): cache k has processed a BROADINV/INVALIDATE for
     *  block a.  Not in the paper's Table 3-1: the timed tier adds
     *  acknowledged invalidations to close the in-flight-MREQUEST
     *  race that §3.2.5's queue deletion alone cannot (see
     *  timed/dir_ctrl.hh); the functional tier, like the paper's
     *  §4.2 accounting, is ack-free. */
    InvAck,
};

/** Read/write discriminator carried by REQUEST/EJECT/BROADQUERY/PURGE. */
enum class RW : std::uint8_t { Read, Write };

/** One message in flight on the interconnection network. */
struct Message
{
    MsgKind kind = MsgKind::Request;
    /** Issuing/affected cache (the paper's k), or invalidProc. */
    ProcId proc = invalidProc;
    /** Block address (the paper's a or olda). */
    Addr addr = invalidAddr;
    /** Read/write discriminator where applicable. */
    RW rw = RW::Read;
    /** Grant flag for MGRANTED. */
    bool granted = false;
    /** Block contents for get/put. */
    Value data = 0;
    /** True if this copy was delivered as part of a broadcast. */
    bool broadcast = false;
};

/**
 * Mnemonic (paper spelling) for a message kind, as a string literal
 * with static storage duration.  The trace recorder stores event names
 * as borrowed `const char *`, so the allocation-free spelling is the
 * one the record path must use.
 */
const char *mnemonic(MsgKind kind);

/** Mnemonic (paper spelling) for a message kind. */
std::string toString(MsgKind kind);

/** Render a message for traces and test failure output. */
std::string toString(const Message &m);

} // namespace dir2b

#endif // DIR2B_NET_MESSAGE_HH
