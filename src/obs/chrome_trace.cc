#include "obs/chrome_trace.hh"

#include <sstream>

namespace dir2b
{

namespace
{

void
writeEscaped(std::ostream &os, const char *s)
{
    os << '"' << Json::escape(s ? s : "") << '"';
}

void
writeArgs(std::ostream &os, const TraceRecorder::Event &e)
{
    os << "\"args\":{";
    bool first = true;
    if (e.addr != invalidAddr) {
        os << "\"addr\":" << e.addr;
        first = false;
    }
    if (!first)
        os << ',';
    os << "\"arg0\":" << e.arg0 << ",\"arg1\":" << e.arg1 << '}';
}

void
writeEvent(std::ostream &os, const TraceRecorder::Event &e,
           std::size_t tidBase)
{
    os << "    {\"pid\":0,\"tid\":" << tidBase + e.track << ",\"name\":";
    writeEscaped(os, e.name);
    switch (e.type) {
      case TraceRecorder::Ev::Span: {
        const Tick dur = e.end >= e.start ? e.end - e.start : 0;
        os << ",\"ph\":\"X\",\"ts\":" << e.start << ",\"dur\":" << dur
           << ',';
        writeArgs(os, e);
        break;
      }
      case TraceRecorder::Ev::Instant:
        os << ",\"ph\":\"i\",\"ts\":" << e.start << ",\"s\":\"t\",";
        writeArgs(os, e);
        break;
      case TraceRecorder::Ev::Counter:
        os << ",\"ph\":\"C\",\"ts\":" << e.start
           << ",\"args\":{\"value\":" << e.arg0 << '}';
        break;
    }
    os << '}';
}

void
writeObjectOrEmpty(std::ostream &os, const Json &j)
{
    if (j.isObject())
        j.write(os, 0);
    else
        os << "{}";
}

} // namespace

void
writeTraceArtifact(std::ostream &os, const TraceRecorder &rec,
                   const std::string &bench, const Json &params,
                   const Json &summary, const Json &meta)
{
    writeTraceArtifact(os, std::vector<const TraceRecorder *>{&rec},
                       bench, params, summary, meta);
}

void
writeTraceArtifact(std::ostream &os,
                   const std::vector<const TraceRecorder *> &recs,
                   const std::string &bench, const Json &params,
                   const Json &summary, const Json &meta)
{
    os << "{\n";
    os << "  \"schema\": \"" << traceSchemaName << "\",\n";
    os << "  \"schema_version\": " << traceSchemaVersion << ",\n";
    os << "  \"bench\": \"" << Json::escape(bench) << "\",\n";
    os << "  \"displayTimeUnit\": \"ms\",\n";
    os << "  \"params\": ";
    writeObjectOrEmpty(os, params);
    os << ",\n  \"summary\": ";
    writeObjectOrEmpty(os, summary);
    os << ",\n  \"traceEvents\": [\n";

    // Metadata events name the process and one "thread" per recorder
    // track; sort indices pin the track order to registration order.
    // With several recorders (one per shard) the thread-id space is
    // partitioned: shard s's track t gets tid tidBase(s) + t and a
    // "s<s>/" name prefix, so every shard renders as its own group of
    // Perfetto tracks.
    os << "    {\"pid\":0,\"tid\":0,\"ph\":\"M\","
          "\"name\":\"process_name\",\"args\":{\"name\":\"dir2b\"}}";
    const bool prefixed = recs.size() > 1;
    std::size_t tidBase = 0;
    for (std::size_t s = 0; s < recs.size(); ++s) {
        if (!recs[s])
            continue;
        const auto &tracks = recs[s]->tracks();
        for (std::size_t t = 0; t < tracks.size(); ++t) {
            const std::size_t tid = tidBase + t;
            std::string name = tracks[t];
            if (prefixed)
                name = "s" + std::to_string(s) + "/" + name;
            os << ",\n    {\"pid\":0,\"tid\":" << tid << ",\"ph\":\"M\","
               << "\"name\":\"thread_name\",\"args\":{\"name\":\""
               << Json::escape(name) << "\"}}";
            os << ",\n    {\"pid\":0,\"tid\":" << tid << ",\"ph\":\"M\","
               << "\"name\":\"thread_sort_index\",\"args\":"
               << "{\"sort_index\":" << tid << "}}";
        }
        tidBase += tracks.size();
    }
    tidBase = 0;
    for (std::size_t s = 0; s < recs.size(); ++s) {
        if (!recs[s])
            continue;
        for (std::size_t i = 0; i < recs[s]->size(); ++i) {
            os << ",\n";
            writeEvent(os, recs[s]->at(i), tidBase);
        }
        tidBase += recs[s]->tracks().size();
    }
    os << "\n  ],\n";
    os << "  \"meta\": ";
    writeObjectOrEmpty(os, meta);
    os << "\n}\n";
}

namespace
{

std::string
eventError(std::size_t i, const std::string &what)
{
    std::ostringstream os;
    os << "traceEvents[" << i << "]: " << what;
    return os.str();
}

std::string
validateEvent(std::size_t i, const Json &e)
{
    if (!e.isObject())
        return eventError(i, "not an object");
    for (const char *key : {"ph", "pid", "tid", "name"})
        if (!e.contains(key))
            return eventError(i, std::string("missing \"") + key + "\"");
    if (!e.at("ph").isString() || e.at("ph").asString().size() != 1)
        return eventError(i, "\"ph\" must be a one-char string");
    if (!e.at("pid").isNumber() || !e.at("tid").isNumber())
        return eventError(i, "\"pid\"/\"tid\" must be numbers");
    if (!e.at("name").isString())
        return eventError(i, "\"name\" must be a string");

    const char ph = e.at("ph").asString()[0];
    switch (ph) {
      case 'M':
        if (!e.contains("args") || !e.at("args").isObject())
            return eventError(i, "metadata event needs object \"args\"");
        return "";
      case 'X':
        if (!e.contains("ts") || !e.at("ts").isNumber())
            return eventError(i, "complete event needs numeric \"ts\"");
        if (!e.contains("dur") || !e.at("dur").isNumber())
            return eventError(i, "complete event needs numeric \"dur\"");
        return "";
      case 'i':
        if (!e.contains("ts") || !e.at("ts").isNumber())
            return eventError(i, "instant event needs numeric \"ts\"");
        if (!e.contains("s") || !e.at("s").isString())
            return eventError(i, "instant event needs scope \"s\"");
        return "";
      case 'C':
        if (!e.contains("ts") || !e.at("ts").isNumber())
            return eventError(i, "counter event needs numeric \"ts\"");
        if (!e.contains("args") || !e.at("args").isObject() ||
            !e.at("args").contains("value"))
            return eventError(i, "counter event needs args.value");
        return "";
      default:
        return eventError(i, std::string("unknown phase '") + ph + "'");
    }
}

} // namespace

std::string
validateTraceArtifact(const Json &doc)
{
    if (!doc.isObject())
        return "artifact is not a JSON object";
    for (const char *key :
         {"schema", "schema_version", "bench", "params", "summary",
          "traceEvents", "meta"})
        if (!doc.contains(key))
            return std::string("missing top-level \"") + key + "\"";
    if (!doc.at("schema").isString() ||
        doc.at("schema").asString() != traceSchemaName)
        return std::string("schema must be \"") + traceSchemaName + "\"";
    if (!doc.at("schema_version").isNumber())
        return "schema_version must be a number";
    const auto v = doc.at("schema_version").asInt();
    if (v < 1 || v > traceSchemaVersion) {
        std::ostringstream os;
        os << "unsupported schema_version " << v << " (know 1.."
           << traceSchemaVersion << ")";
        return os.str();
    }
    if (!doc.at("bench").isString() || doc.at("bench").asString().empty())
        return "bench must be a non-empty string";
    if (!doc.at("params").isObject())
        return "params must be an object";
    if (!doc.at("summary").isObject())
        return "summary must be an object";
    if (!doc.at("meta").isObject())
        return "meta must be an object";
    if (!doc.at("traceEvents").isArray())
        return "traceEvents must be an array";

    const auto &events = doc.at("traceEvents").elements();
    bool sawThreadName = false;
    bool sawData = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        std::string err = validateEvent(i, events[i]);
        if (!err.empty())
            return err;
        if (events[i].at("ph").asString() == "M") {
            if (events[i].at("name").asString() == "thread_name")
                sawThreadName = true;
        } else {
            sawData = true;
        }
    }
    if (sawData && !sawThreadName)
        return "no thread_name metadata event (tracks would be unnamed)";
    return "";
}

} // namespace dir2b
