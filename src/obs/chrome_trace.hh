/**
 * @file
 * Chrome trace_event exporter and the `dir2b.trace` artifact schema.
 *
 * A dir2b trace artifact is ONE JSON object that is simultaneously
 *
 *  (a) a valid Chrome trace_event file — the top-level `traceEvents`
 *      array uses the standard phases ("M" metadata, "X" complete
 *      spans, "i" instants, "C" counters), so Perfetto and
 *      chrome://tracing load it directly (unknown top-level keys are
 *      ignored by both); and
 *
 *  (b) a versioned dir2b artifact — the same schema/schema_version/
 *      bench/params/summary/meta envelope as dir2b.sweep, so
 *      tools/check_artifact validates it and the determinism contract
 *      (docs/METRICS.md) carries over: everything outside `meta` is a
 *      pure function of the configuration.
 *
 * Tick timestamps are emitted as microseconds 1:1 (one cycle = 1 us on
 * the Perfetto timeline); the unit is cosmetic, relative durations are
 * what matter.
 *
 * The exporter streams events straight to the output stream instead of
 * building a Json document: a quarter-million-event ring would be
 * wasteful to materialise as a DOM first.
 */

#ifndef DIR2B_OBS_CHROME_TRACE_HH
#define DIR2B_OBS_CHROME_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_recorder.hh"
#include "report/json.hh"

namespace dir2b
{

constexpr const char *traceSchemaName = "dir2b.trace";
constexpr int traceSchemaVersion = 1;

/**
 * Write the full artifact: envelope + metadata events naming every
 * recorder track + the recorded events, oldest first.
 *
 * @param bench   artifact producer name (e.g. "trace_dump")
 * @param params  run configuration (deterministic part)
 * @param summary per-phase latency summary (deterministic part)
 * @param meta    environment stamp (wall time etc.; excluded from
 *                determinism comparisons, like dir2b.sweep's meta)
 */
void writeTraceArtifact(std::ostream &os, const TraceRecorder &rec,
                        const std::string &bench, const Json &params,
                        const Json &summary, const Json &meta);

/**
 * Multi-recorder variant for sharded runs: recorder s's tracks render
 * as separate Perfetto tracks named "s<s>/<track>" (the prefix is
 * omitted when only one recorder is given), with thread ids offset so
 * shards never collide.  Null entries are skipped.
 */
void writeTraceArtifact(std::ostream &os,
                        const std::vector<const TraceRecorder *> &recs,
                        const std::string &bench, const Json &params,
                        const Json &summary, const Json &meta);

/**
 * Structural validation of a parsed dir2b.trace document.  Returns ""
 * when valid, else a one-line description of the first problem.
 * Shared by tools/check_artifact and the fixture tests.
 */
std::string validateTraceArtifact(const Json &doc);

} // namespace dir2b

#endif // DIR2B_OBS_CHROME_TRACE_HH
