#include "obs/telemetry.hh"

#include <cstdio>
#include <cstring>

#include "obs/trace_recorder.hh"
#include "util/logging.hh"

namespace dir2b
{

// ----------------------------------------------------------------------
// MetricRegistry
// ----------------------------------------------------------------------

std::size_t
MetricRegistry::push(std::string name, MetricKind kind, Src src,
                     const void *ptr, Probe fn)
{
    DIR2B_ASSERT(!name.empty(), "metric name must be non-empty");
    if (find(name.c_str()) != npos)
        DIR2B_FATAL("duplicate metric '", name, "'");
    names_.push_back(std::move(name));
    metrics_.push_back({names_.back().c_str(), ptr, fn, kind, src});
    return metrics_.size() - 1;
}

std::size_t
MetricRegistry::add(std::string name, MetricKind kind, const Counter *c)
{
    DIR2B_ASSERT(c, "null Counter source");
    return push(std::move(name), kind, Src::Stat, c, nullptr);
}

std::size_t
MetricRegistry::add(std::string name, MetricKind kind,
                    const std::uint64_t *word)
{
    DIR2B_ASSERT(word, "null word source");
    return push(std::move(name), kind, Src::Word, word, nullptr);
}

std::size_t
MetricRegistry::add(std::string name, MetricKind kind, Probe fn,
                    const void *ctx)
{
    DIR2B_ASSERT(fn, "null probe source");
    return push(std::move(name), kind, Src::Probe, ctx, fn);
}

std::size_t
MetricRegistry::find(const char *name) const
{
    for (std::size_t i = 0; i < metrics_.size(); ++i)
        if (std::strcmp(metrics_[i].name, name) == 0)
            return i;
    return npos;
}

std::uint64_t
MetricRegistry::read(std::size_t i) const
{
    const Metric &m = metrics_[i];
    switch (m.src) {
      case Src::Stat:
        return static_cast<const Counter *>(m.ptr)->value();
      case Src::Word:
        return *static_cast<const std::uint64_t *>(m.ptr);
      case Src::Probe:
        return m.fn(m.ptr);
    }
    return 0; // unreachable
}

// ----------------------------------------------------------------------
// TelemetrySampler
// ----------------------------------------------------------------------

TelemetrySampler::TelemetrySampler(SeriesDomain domain,
                                   std::uint64_t interval)
    : domain_(domain), interval_(interval), next_(interval)
{
    DIR2B_ASSERT(interval >= 1, "sampling interval must be at least 1");
}

void
TelemetrySampler::attachRecorder(TraceRecorder *rec)
{
    DIR2B_ASSERT(rec, "null recorder");
    DIR2B_ASSERT(samples_ == 0,
                 "attachRecorder after sampling started");
    recorders_.push_back({rec, rec->addTrack("metrics")});
}

void
TelemetrySampler::emit(std::uint64_t t)
{
    const std::size_t n = reg_.size();
    rows_.push_back(t);
    for (std::size_t i = 0; i < n; ++i)
        rows_.push_back(reg_.read(i));
    // Re-read via the row, not the registry: sinks must see exactly
    // what the artifact will record.
    const std::uint64_t *row = rows_.data() + samples_ * (1 + n) + 1;
    for (const RecorderSink &sink : recorders_)
        for (std::size_t i = 0; i < n; ++i)
            sink.rec->counter(t, sink.track, reg_.name(i), row[i]);
    lastT_ = t;
    ++samples_;
    if (progress_)
        progress_->onSample(*this);
}

void
TelemetrySampler::flushUpTo(std::uint64_t t)
{
    if (finished_)
        return;
    while (next_ <= t) {
        const std::uint64_t boundary = next_;
        // Advance first (saturating): emit() must observe the *new*
        // nextBoundary if a sink ever asks.
        next_ = next_ > ~std::uint64_t(0) - interval_
                    ? ~std::uint64_t(0)
                    : next_ + interval_;
        emit(boundary);
        if (boundary == ~std::uint64_t(0))
            break;
    }
}

void
TelemetrySampler::finish(std::uint64_t finalT)
{
    if (finished_)
        return;
    flushUpTo(finalT);
    // The final partial interval: exactly one sample at finalT unless
    // a boundary already landed there.  A run shorter than one
    // interval thus still yields its end-of-run snapshot.
    if (samples_ == 0 || lastT_ != finalT)
        emit(finalT);
    finished_ = true;
    if (progress_)
        progress_->finish();
}

std::uint64_t
TelemetrySampler::sampleT(std::size_t s) const
{
    return rows_[s * (1 + reg_.size())];
}

std::uint64_t
TelemetrySampler::sampleValue(std::size_t s, std::size_t metric) const
{
    return rows_[s * (1 + reg_.size()) + 1 + metric];
}

// ----------------------------------------------------------------------
// ProgressMeter
// ----------------------------------------------------------------------

namespace
{

/** 12345678 -> "12.3M" (fits a progress line). */
void
humanCount(std::uint64_t v, char *buf, std::size_t n)
{
    if (v >= 10'000'000)
        std::snprintf(buf, n, "%.1fM", static_cast<double>(v) / 1e6);
    else if (v >= 10'000)
        std::snprintf(buf, n, "%.1fk", static_cast<double>(v) / 1e3);
    else
        std::snprintf(buf, n, "%llu",
                      static_cast<unsigned long long>(v));
}

} // namespace

ProgressMeter::ProgressMeter(std::uint64_t totalRefs)
    : total_(totalRefs), start_(std::chrono::steady_clock::now()),
      lastDraw_(start_)
{
}

void
ProgressMeter::onSample(const TelemetrySampler &s)
{
    const auto now = std::chrono::steady_clock::now();
    if (drawn_ && now - lastDraw_ < std::chrono::milliseconds(200))
        return;
    if (!refsIdxResolved_) {
        refsIdx_ = s.registry().find("refs.completed");
        refsIdxResolved_ = true;
    }
    const std::size_t last = s.samples() - 1;
    const std::uint64_t done = refsIdx_ == MetricRegistry::npos
                                   ? s.sampleT(last)
                                   : s.sampleValue(last, refsIdx_);
    const double secs =
        std::chrono::duration<double>(now - start_).count();
    const double rate = secs > 0 ? static_cast<double>(done) / secs : 0;

    char doneBuf[32], rateBuf[32], deltaBuf[32];
    humanCount(done, doneBuf, sizeof(doneBuf));
    humanCount(static_cast<std::uint64_t>(rate), rateBuf,
               sizeof(rateBuf));
    humanCount(done - prevDone_, deltaBuf, sizeof(deltaBuf));

    if (total_ && rate > 0) {
        const double eta =
            done >= total_
                ? 0.0
                : static_cast<double>(total_ - done) / rate;
        char totalBuf[32];
        humanCount(total_, totalBuf, sizeof(totalBuf));
        std::fprintf(stderr,
                     "\r%s/%s refs  %5.1f%%  %s refs/s  ETA %.1fs  "
                     "[+%s]   ",
                     doneBuf, totalBuf,
                     100.0 * static_cast<double>(done) /
                         static_cast<double>(total_),
                     rateBuf, eta, deltaBuf);
    } else {
        std::fprintf(stderr, "\r%s refs  %s refs/s  [+%s]   ",
                     doneBuf, rateBuf, deltaBuf);
    }
    std::fflush(stderr);
    prevDone_ = done;
    lastDraw_ = now;
    drawn_ = true;
}

void
ProgressMeter::finish()
{
    if (!drawn_)
        return;
    std::fputc('\n', stderr);
    std::fflush(stderr);
    drawn_ = false;
}

// ----------------------------------------------------------------------
// dir2b.series artifact
// ----------------------------------------------------------------------

namespace
{

const char *
domainName(SeriesDomain d)
{
    return d == SeriesDomain::Refs ? "refs" : "ticks";
}

const char *
kindName(MetricKind k)
{
    return k == MetricKind::Counter ? "counter" : "gauge";
}

/** Unsigned 64-bit value check that never panics on hostile input. */
bool
isU64(const Json &j)
{
    return j.kind() == Json::Kind::Uint ||
           (j.kind() == Json::Kind::Int && j.asInt() >= 0);
}

} // namespace

Json
makeSeriesArtifact(const std::string &bench, Json params,
                   const TelemetrySampler &s)
{
    Json a = Json::object();
    a.set("schema", seriesSchemaName);
    a.set("schema_version", seriesSchemaVersion);
    a.set("bench", bench);
    a.set("params", params.isNull() ? Json::object()
                                    : std::move(params));

    const MetricRegistry &reg = s.registry();
    Json series = Json::object();
    series.set("domain", domainName(s.domain()));
    series.set("interval", s.interval());
    Json metrics = Json::array();
    for (std::size_t i = 0; i < reg.size(); ++i) {
        Json m = Json::object();
        m.set("name", reg.name(i));
        m.set("kind", kindName(reg.kind(i)));
        metrics.push(std::move(m));
    }
    series.set("metrics", std::move(metrics));
    Json rows = Json::array();
    for (std::size_t r = 0; r < s.samples(); ++r) {
        Json row = Json::array();
        row.push(s.sampleT(r));
        for (std::size_t i = 0; i < reg.size(); ++i)
            row.push(s.sampleValue(r, i));
        rows.push(std::move(row));
    }
    series.set("samples", std::move(rows));
    a.set("series", std::move(series));

    Json summary = Json::object();
    summary.set("samples", static_cast<std::uint64_t>(s.samples()));
    summary.set("finalT",
                s.samples() ? s.sampleT(s.samples() - 1)
                            : std::uint64_t(0));
    a.set("summary", std::move(summary));
    return a;
}

Json
seriesProvenanceJson(const TelemetrySampler &s)
{
    Json p = Json::object();
    p.set("domain", domainName(s.domain()));
    p.set("interval", s.interval());
    p.set("metrics", static_cast<std::uint64_t>(s.registry().size()));
    p.set("samples", static_cast<std::uint64_t>(s.samples()));
    return p;
}

std::string
validateSeriesArtifact(const Json &doc)
{
    if (!doc.isObject())
        return "document is not an object";
    for (const char *key : {"schema", "schema_version", "bench",
                            "params", "series", "summary"})
        if (!doc.contains(key))
            return std::string("missing key '") + key + "'";
    if (!doc.at("schema").isString() ||
        doc.at("schema").asString() != seriesSchemaName)
        return "schema is not \"dir2b.series\"";
    const Json &ver = doc.at("schema_version");
    if (!isU64(ver) || ver.asUint() < 1 ||
        ver.asUint() > static_cast<std::uint64_t>(seriesSchemaVersion))
        return "unsupported schema_version";
    if (!doc.at("bench").isString())
        return "bench is not a string";
    if (!doc.at("params").isObject())
        return "params is not an object";
    if (doc.contains("meta"))
        return "series artifacts must not carry a meta block";

    const Json &se = doc.at("series");
    if (!se.isObject())
        return "series is not an object";
    for (const char *key : {"domain", "interval", "metrics", "samples"})
        if (!se.contains(key))
            return std::string("series is missing '") + key + "'";
    if (!se.at("domain").isString() ||
        (se.at("domain").asString() != "refs" &&
         se.at("domain").asString() != "ticks"))
        return "series.domain must be \"refs\" or \"ticks\"";
    if (!isU64(se.at("interval")) || se.at("interval").asUint() < 1)
        return "series.interval must be a positive integer";

    const Json &metrics = se.at("metrics");
    if (!metrics.isArray())
        return "series.metrics is not an array";
    std::vector<bool> isCounter;
    std::vector<std::string> seen;
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const Json &m = metrics.at(i);
        if (!m.isObject() || !m.contains("name") ||
            !m.contains("kind"))
            return "series.metrics entries need name and kind";
        if (!m.at("name").isString() ||
            m.at("name").asString().empty())
            return "metric name must be a non-empty string";
        if (!m.at("kind").isString() ||
            (m.at("kind").asString() != "counter" &&
             m.at("kind").asString() != "gauge"))
            return "metric kind must be \"counter\" or \"gauge\"";
        for (const std::string &p : seen)
            if (p == m.at("name").asString())
                return "duplicate metric name '" +
                       m.at("name").asString() + "'";
        seen.push_back(m.at("name").asString());
        isCounter.push_back(m.at("kind").asString() == "counter");
    }

    const Json &rows = se.at("samples");
    if (!rows.isArray())
        return "series.samples is not an array";
    std::vector<std::uint64_t> prev;
    std::uint64_t prevT = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const Json &row = rows.at(r);
        if (!row.isArray() || row.size() != 1 + metrics.size())
            return "sample rows must hold t plus one value per metric";
        for (std::size_t c = 0; c < row.size(); ++c)
            if (!isU64(row.at(c)))
                return "sample values must be unsigned integers";
        const std::uint64_t t = row.at(0).asUint();
        if (r > 0 && t <= prevT)
            return "sample t is not strictly increasing";
        for (std::size_t m = 0; m < metrics.size(); ++m) {
            const std::uint64_t v = row.at(1 + m).asUint();
            if (r > 0 && isCounter[m] && v < prev[m])
                return "counter '" + seen[m] + "' decreased";
            if (r == 0)
                prev.push_back(v);
            else
                prev[m] = v;
        }
        prevT = t;
    }

    const Json &summary = doc.at("summary");
    if (!summary.isObject() || !summary.contains("samples") ||
        !summary.contains("finalT"))
        return "summary needs samples and finalT";
    if (!isU64(summary.at("samples")) ||
        summary.at("samples").asUint() != rows.size())
        return "summary.samples disagrees with series.samples";
    const std::uint64_t wantFinal =
        rows.size() ? rows.at(rows.size() - 1).at(0).asUint() : 0;
    if (!isU64(summary.at("finalT")) ||
        summary.at("finalT").asUint() != wantFinal)
        return "summary.finalT disagrees with the last sample";
    return "";
}

} // namespace dir2b
