/**
 * @file
 * Time-series telemetry: metric registry, deterministic sampler and
 * the `dir2b.series` artifact schema.
 *
 * Every statistic the simulator reports elsewhere is an end-of-run
 * aggregate; this layer adds the time axis.  Components register
 * named POD counters and gauges in a MetricRegistry (borrowed
 * pointers — reading a metric never allocates and never touches
 * simulation state), and a TelemetrySampler snapshots the whole
 * registry at deterministic boundaries:
 *
 *  - functional tier: every N completed references;
 *  - timed tier: every N ticks, with the engine flushing boundaries
 *    only when the simulation state is exact for them — the serial
 *    engine runs the kernel in boundary-clamped chunks, the sharded
 *    engine flushes at merge-replay barriers and clamps its epoch
 *    horizon to the next boundary.  A boundary T means "every event
 *    with tick < T has executed, none at or after T has", which is
 *    the same set of events in serial and sharded execution, so the
 *    two emit **byte-identical** series.
 *
 * Snapshots accumulate as flat rows of uint64 and serialize to a
 * versioned `dir2b.series` JSON artifact (schema below, validated by
 * tools/check_artifact, documented in docs/METRICS.md).  The artifact
 * deliberately has NO `meta` block: the whole document is a pure
 * function of the configuration, so serial-vs-sharded identity can be
 * checked with a plain byte compare.
 *
 * Snapshots can additionally fan out to:
 *  - a TraceRecorder (attachRecorder), rendering every metric as a
 *    Perfetto counter track on the "metrics" thread so spans and
 *    metrics line up on one timeline (obs/chrome_trace.hh);
 *  - a ProgressMeter (attachProgress), a wall-clock-throttled live
 *    stderr line (refs/s, ETA, current interval rate) for long
 *    interactive runs.  Wall clock feeds *display only* — nothing it
 *    reads or prints flows back into simulation or artifacts.
 *
 * Determinism contract (tests/test_telemetry.cc proves it): attaching
 * a sampler never perturbs simulation statistics — all golden digests
 * are bit-identical with sampling on or off, both tiers, serial and
 * sharded.
 */

#ifndef DIR2B_OBS_TELEMETRY_HH
#define DIR2B_OBS_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "report/json.hh"
#include "sim/stats.hh"

namespace dir2b
{

class TraceRecorder;
class ProgressMeter;

/** How a metric's samples relate over time. */
enum class MetricKind : std::uint8_t
{
    Counter, ///< monotonically non-decreasing (rates = deltas)
    Gauge,   ///< instantaneous level (queue depth, resident bytes)
};

/**
 * Named read-only views of component statistics.  Registration (setup
 * time) allocates; read() does not.  Three source shapes cover every
 * component without adapters:
 *
 *  - a sim/stats.hh Counter,
 *  - a plain uint64 word (proto/counts.hh fields),
 *  - a capture-less probe function + context pointer, for values that
 *    need aggregation across controllers at read time.
 *
 * Names must be unique (fatal otherwise) and live in a deque so the
 * c_str() pointers handed to TraceRecorder stay stable forever.
 */
class MetricRegistry
{
  public:
    using Probe = std::uint64_t (*)(const void *ctx);

    static constexpr std::size_t npos = ~std::size_t(0);

    std::size_t add(std::string name, MetricKind kind, const Counter *c);
    std::size_t add(std::string name, MetricKind kind,
                    const std::uint64_t *word);
    std::size_t add(std::string name, MetricKind kind, Probe fn,
                    const void *ctx);

    std::size_t size() const { return metrics_.size(); }
    const char *name(std::size_t i) const { return metrics_[i].name; }
    MetricKind kind(std::size_t i) const { return metrics_[i].kind; }

    /** Index of `name`, or npos.  Linear; cache the result. */
    std::size_t find(const char *name) const;

    /** Current value of metric i.  Never allocates. */
    std::uint64_t read(std::size_t i) const;

  private:
    enum class Src : std::uint8_t { Stat, Word, Probe };

    struct Metric
    {
        const char *name;
        const void *ptr;
        Probe fn;
        MetricKind kind;
        Src src;
    };

    std::size_t push(std::string name, MetricKind kind, Src src,
                     const void *ptr, Probe fn);

    std::deque<std::string> names_; ///< stable c_str storage
    std::vector<Metric> metrics_;
};

/** Sample domain: what the boundary coordinate t counts. */
enum class SeriesDomain : std::uint8_t
{
    Refs,  ///< completed references (functional tier)
    Ticks, ///< simulated ticks (timed tier)
};

/**
 * Deterministic interval sampler over a MetricRegistry it owns.
 *
 * Boundaries sit at interval, 2*interval, ... in the domain
 * coordinate.  The driving engine calls flushUpTo(t) whenever it can
 * guarantee the registry is exact for every boundary <= t, and clamps
 * its own execution to nextBoundary() so it never runs past an
 * unsampled boundary.  finish(finalT) flushes the remaining
 * boundaries and emits the final partial interval exactly once (a
 * run shorter than one interval still yields one sample).
 *
 * Sample rows are flat uint64 (t, v0..vn-1).  The only allocation on
 * the sampling path is amortised row-storage growth; registry reads
 * and sink fan-out never allocate.
 */
class TelemetrySampler
{
  public:
    TelemetrySampler(SeriesDomain domain, std::uint64_t interval);

    /** The registry components populate (setup time, before the
     *  engine runs). */
    MetricRegistry &registry() { return reg_; }
    const MetricRegistry &registry() const { return reg_; }

    SeriesDomain domain() const { return domain_; }
    std::uint64_t interval() const { return interval_; }

    /** Mirror every sample into `rec` as counter events on a
     *  dedicated "metrics" track (registers the track now — call
     *  before sampling starts).  Several recorders may attach. */
    void attachRecorder(TraceRecorder *rec);

    /** Forward samples to a live progress line (display only). */
    void attachProgress(ProgressMeter *p) { progress_ = p; }

    // ------------------------------------------------------------------
    // Engine interface.
    // ------------------------------------------------------------------

    /** Emit every not-yet-emitted boundary <= t.  The caller
     *  guarantees registry state is exact for each of them. */
    void flushUpTo(std::uint64_t t);

    /** The next unsampled boundary (saturates at 2^64-1 instead of
     *  wrapping); engines clamp their horizon to it. */
    std::uint64_t nextBoundary() const { return next_; }

    /** Flush boundaries <= finalT, then emit one final sample at
     *  finalT unless a boundary already landed exactly there.
     *  Idempotent; later flushUpTo() calls become no-ops. */
    void finish(std::uint64_t finalT);

    // ------------------------------------------------------------------
    // Results (artifact assembly, progress, tests).
    // ------------------------------------------------------------------

    std::size_t samples() const { return samples_; }
    std::uint64_t sampleT(std::size_t s) const;
    std::uint64_t sampleValue(std::size_t s, std::size_t metric) const;

  private:
    void emit(std::uint64_t t);

    MetricRegistry reg_;
    SeriesDomain domain_;
    std::uint64_t interval_;
    std::uint64_t next_; ///< next boundary; saturating
    std::uint64_t lastT_ = 0;
    std::size_t samples_ = 0;
    bool finished_ = false;
    std::vector<std::uint64_t> rows_; ///< samples_ x (1 + metrics)

    struct RecorderSink
    {
        TraceRecorder *rec;
        std::uint32_t track;
    };
    std::vector<RecorderSink> recorders_;
    ProgressMeter *progress_ = nullptr;
};

/**
 * Live progress line on stderr for long interactive runs:
 *
 *   12.3k/40.0k refs  30.9%  1.2M refs/s  ETA 0.2s  [+2.0k/interval]
 *
 * Redrawn in place (\r), throttled to ~5 Hz of wall clock so terminal
 * I/O never becomes the bottleneck, finished with a newline.  Reads
 * the "refs.completed" metric when the registry has one (timed tier),
 * else the domain coordinate itself (functional tier).  Display only:
 * consulted wall time never reaches simulation state or artifacts.
 * Benches never construct one, so their hot loops carry no progress
 * code at all.
 */
class ProgressMeter
{
  public:
    /** @param totalRefs expected reference total (0 = unknown: no
     *  percentage or ETA, rates only) */
    explicit ProgressMeter(std::uint64_t totalRefs);

    /** Called by the sampler after each emitted sample. */
    void onSample(const TelemetrySampler &s);

    /** Erase-or-keep the line: prints the terminating newline if
     *  anything was drawn. */
    void finish();

  private:
    std::uint64_t total_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastDraw_;
    std::size_t refsIdx_ = MetricRegistry::npos;
    bool refsIdxResolved_ = false;
    std::uint64_t prevDone_ = 0;
    bool drawn_ = false;
};

// ----------------------------------------------------------------------
// The dir2b.series artifact.
// ----------------------------------------------------------------------

/** Discriminator and layout version of series artifacts:
 *
 *   {
 *     "schema": "dir2b.series",
 *     "schema_version": 1,
 *     "bench": "<producer>",
 *     "params": { ...run configuration (deterministic subset)... },
 *     "series": {
 *       "domain": "refs" | "ticks",
 *       "interval": N,
 *       "metrics": [ { "name": "...", "kind": "counter"|"gauge" }, .. ],
 *       "samples": [ [t, v0, v1, ...], ... ]
 *     },
 *     "summary": { "samples": N, "finalT": T }
 *   }
 *
 * No "meta" block, by design: the document is a pure function of the
 * configuration (params must therefore exclude host knobs like shard
 * or thread counts), so determinism checks are a byte compare. */
constexpr const char *seriesSchemaName = "dir2b.series";
constexpr int seriesSchemaVersion = 1;

/** Assemble the artifact from a finished sampler.  `params` may be
 *  Json() for none. */
Json makeSeriesArtifact(const std::string &bench, Json params,
                        const TelemetrySampler &s);

/** Structural validation of a parsed dir2b.series document.  Returns
 *  "" when valid, else a one-line description of the first problem.
 *  Shared by tools/check_artifact and the fixture tests. */
std::string validateSeriesArtifact(const Json &doc);

/** The compact `series` provenance object a dir2b.sweep cell carries
 *  when its run was sampled (schema v5, docs/METRICS.md). */
Json seriesProvenanceJson(const TelemetrySampler &s);

} // namespace dir2b

#endif // DIR2B_OBS_TELEMETRY_HH
