/**
 * @file
 * Low-overhead ring-buffer trace recorder for the timed tier.
 *
 * The recorder captures *spans* (phases with a start and end tick),
 * *instant* events (Table 3-1 commands on the wire, protocol
 * decisions), and *counter* samples (queue depths) into a
 * fixed-capacity ring of POD records.  Design constraints:
 *
 *  - Zero heap allocation on the record path.  Event names are
 *    borrowed `const char *` string literals (or other
 *    static-duration strings); the ring is sized once at
 *    construction.  The only allocating entry point is note(),
 *    which exists to absorb LogLevel::Debug messages — a mode that
 *    already allocates per message.
 *
 *  - Compiled out entirely when tracing is disabled.  Call sites in
 *    the timed tier go through the DIR2B_TRC() macro below, which
 *    expands to `((void)0)` unless the build defines DIR2B_TRACE
 *    (CMake option DIR2B_TRACING, ON by default).  With tracing
 *    compiled in but no recorder attached (TimedConfig::tracer ==
 *    nullptr), the residual cost is one null check per site.
 *
 *  - Determinism-neutral.  Recording never schedules events, never
 *    consults wall-clock time, and never touches simulation state;
 *    golden stats digests are bit-identical with tracing on or off
 *    (tests/test_obs.cc proves it).
 *
 * The ring overwrites the oldest events when full (dropped() counts
 * casualties), so a bounded recorder can watch an unbounded run and
 * keep the most recent window — the useful one when chasing a bug
 * at the end of a trace.
 */

#ifndef DIR2B_OBS_TRACE_RECORDER_HH
#define DIR2B_OBS_TRACE_RECORDER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/types.hh"

namespace dir2b
{

/** True when the instrumentation call sites are compiled in. */
#if defined(DIR2B_TRACE) && DIR2B_TRACE
inline constexpr bool traceCompiledIn = true;
#else
inline constexpr bool traceCompiledIn = false;
#endif

class TraceRecorder
{
  public:
    /** What one ring record represents. */
    enum class Ev : std::uint8_t
    {
        Span,    ///< [start, end] phase on a track
        Instant, ///< point event at start (end unused)
        Counter, ///< value sample: arg0 = value at tick start
    };

    /** One recorded event.  POD; names are borrowed, never owned. */
    struct Event
    {
        Tick start = 0;
        Tick end = 0;
        const char *name = nullptr;
        Addr addr = invalidAddr;
        std::uint64_t arg0 = 0;
        std::uint64_t arg1 = 0;
        std::uint32_t track = 0;
        Ev type = Ev::Instant;
    };

    /** @param capacity ring size in events (power of two not required) */
    explicit TraceRecorder(std::size_t capacity = std::size_t(1) << 18);

    /**
     * Register a named track (one per controller; setup time, so the
     * std::string allocation is fine).  Returns the track id to pass
     * to the record calls.
     */
    std::uint32_t addTrack(std::string name);
    const std::vector<std::string> &tracks() const { return trackNames_; }

    // ------------------------------------------------------------------
    // Record path: no allocation, no branches beyond the ring index.
    // ------------------------------------------------------------------

    /** Point event (a command on the wire, a protocol decision). */
    void instant(Tick t, std::uint32_t track, const char *name,
                 Addr addr = invalidAddr, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0);

    /**
     * Span whose duration is already known — the natural shape in a
     * discrete-event simulator, where busy windows are scheduled
     * ahead of time (end may be in the simulated future).
     */
    void complete(Tick start, Tick end, std::uint32_t track,
                  const char *name, Addr addr = invalidAddr,
                  std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

    /** Counter sample (e.g. queue depth after a mutation). */
    void counter(Tick t, std::uint32_t track, const char *name,
                 std::uint64_t value);

    /**
     * Open a nested span on a track.  Spans on one track must nest
     * (Perfetto's model); a fixed per-track stack (depth maxDepth)
     * pairs each end() with its begin() and flags mismatches instead
     * of emitting garbage.
     */
    void begin(Tick t, std::uint32_t track, const char *name,
               Addr addr = invalidAddr, std::uint64_t arg0 = 0);

    /**
     * Close the innermost open span on a track.  @p name must match
     * the open span's name; on mismatch (or no open span) nothing is
     * emitted, mismatchedEnds() increments, and false is returned.
     */
    bool end(Tick t, std::uint32_t track, const char *name);

    /**
     * Instant event with an owned string payload — the LogLevel::Debug
     * routing entry point.  Allocates (debug mode already does).
     */
    void note(Tick t, std::uint32_t track, const std::string &text);

    // ------------------------------------------------------------------
    // Inspection (exporter + tests).
    // ------------------------------------------------------------------

    /** Events currently held (<= capacity), oldest first via at(). */
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }
    /** i-th held event, 0 = oldest surviving. */
    const Event &at(std::size_t i) const;

    /** Total events accepted (including ones later overwritten). */
    std::uint64_t recorded() const { return recorded_; }
    /** Events lost to ring wrap. */
    std::uint64_t dropped() const
    {
        return recorded_ - count_;
    }
    /** end() calls that did not match an open begin(). */
    std::uint64_t mismatchedEnds() const { return mismatchedEnds_; }
    /** begin() calls dropped because a track's stack was full. */
    std::uint64_t overflowedSpans() const { return overflowedSpans_; }
    /** Spans currently open (begun, not yet ended) across tracks. */
    std::size_t openSpans() const;

    void clear();

    /** Per-track span nesting limit. */
    static constexpr std::size_t maxDepth = 16;

  private:
    struct Open
    {
        const char *name;
        Tick start;
        Addr addr;
        std::uint64_t arg0;
    };

    Event &push();

    std::vector<Event> ring_;
    std::size_t head_ = 0; ///< next write slot
    std::size_t count_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t mismatchedEnds_ = 0;
    std::uint64_t overflowedSpans_ = 0;

    std::vector<std::string> trackNames_;
    /** Per-track stacks of open spans; flat, maxDepth slots each. */
    std::vector<Open> stacks_;
    std::vector<std::uint8_t> depth_;

    /** Owned storage for note() payloads (stable addresses). */
    std::deque<std::string> notes_;
};

} // namespace dir2b

/**
 * Guarded record call: DIR2B_TRC(trc_, instant(now, trk_, "x")) emits
 * `if (trc_) trc_->instant(...)` when tracing is compiled in and
 * nothing at all otherwise — arguments are not even evaluated, so
 * tracing-off builds carry no trace code or data flow.
 */
#if defined(DIR2B_TRACE) && DIR2B_TRACE
#define DIR2B_TRC(rec, call)                                              \
    do {                                                                  \
        if (rec)                                                          \
            (rec)->call;                                                  \
    } while (0)
#else
#define DIR2B_TRC(rec, call) ((void)0)
#endif

#endif // DIR2B_OBS_TRACE_RECORDER_HH
