#include "obs/trace_recorder.hh"

#include <cstring>

#include "util/logging.hh"

namespace dir2b
{

TraceRecorder::TraceRecorder(std::size_t capacity)
{
    DIR2B_ASSERT(capacity > 0, "trace ring needs capacity > 0");
    ring_.resize(capacity);
}

std::uint32_t
TraceRecorder::addTrack(std::string name)
{
    trackNames_.push_back(std::move(name));
    stacks_.resize(trackNames_.size() * maxDepth);
    depth_.push_back(0);
    return static_cast<std::uint32_t>(trackNames_.size() - 1);
}

TraceRecorder::Event &
TraceRecorder::push()
{
    Event &e = ring_[head_];
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size())
        ++count_;
    ++recorded_;
    return e;
}

void
TraceRecorder::instant(Tick t, std::uint32_t track, const char *name,
                       Addr addr, std::uint64_t arg0, std::uint64_t arg1)
{
    Event &e = push();
    e = Event{t, t, name, addr, arg0, arg1, track, Ev::Instant};
}

void
TraceRecorder::complete(Tick start, Tick end, std::uint32_t track,
                        const char *name, Addr addr, std::uint64_t arg0,
                        std::uint64_t arg1)
{
    Event &e = push();
    e = Event{start, end, name, addr, arg0, arg1, track, Ev::Span};
}

void
TraceRecorder::counter(Tick t, std::uint32_t track, const char *name,
                       std::uint64_t value)
{
    Event &e = push();
    e = Event{t, t, name, invalidAddr, value, 0, track, Ev::Counter};
}

void
TraceRecorder::begin(Tick t, std::uint32_t track, const char *name,
                     Addr addr, std::uint64_t arg0)
{
    std::uint8_t &d = depth_.at(track);
    if (d >= maxDepth) {
        ++overflowedSpans_;
        return;
    }
    stacks_[track * maxDepth + d] = Open{name, t, addr, arg0};
    ++d;
}

bool
TraceRecorder::end(Tick t, std::uint32_t track, const char *name)
{
    std::uint8_t &d = depth_.at(track);
    if (d == 0) {
        ++mismatchedEnds_;
        return false;
    }
    const Open &o = stacks_[track * maxDepth + (d - 1)];
    // Names are usually the same literal, but compare contents so
    // matching across translation units cannot silently fail.
    if (o.name != name && std::strcmp(o.name, name) != 0) {
        ++mismatchedEnds_;
        return false;
    }
    --d;
    complete(o.start, t, track, o.name, o.addr, o.arg0);
    return true;
}

void
TraceRecorder::note(Tick t, std::uint32_t track, const std::string &text)
{
    notes_.push_back(text);
    instant(t, track, notes_.back().c_str());
}

const TraceRecorder::Event &
TraceRecorder::at(std::size_t i) const
{
    DIR2B_ASSERT(i < count_, "trace event index out of range");
    const std::size_t oldest = (head_ + ring_.size() - count_)
                               % ring_.size();
    return ring_[(oldest + i) % ring_.size()];
}

std::size_t
TraceRecorder::openSpans() const
{
    std::size_t n = 0;
    for (auto d : depth_)
        n += d;
    return n;
}

void
TraceRecorder::clear()
{
    head_ = 0;
    count_ = 0;
    recorded_ = 0;
    mismatchedEnds_ = 0;
    overflowedSpans_ = 0;
    std::fill(depth_.begin(), depth_.end(), 0);
    notes_.clear();
}

} // namespace dir2b
