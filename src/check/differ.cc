#include "check/differ.hh"

#include <deque>
#include <set>
#include <sstream>

#include "check/invariants.hh"
#include "check/oracle.hh"
#include "proto/protocol_factory.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "util/parallel.hh"

namespace dir2b
{
namespace
{

ProtoConfig
makeProtoConfig(const DiffConfig &cfg)
{
    ProtoConfig pc;
    pc.numProcs = cfg.numProcs;
    pc.numModules = cfg.numModules;
    pc.cacheGeom.sets = cfg.sets;
    pc.cacheGeom.ways = cfg.ways;
    // Small translation buffer: exercises both the exact-holder-set
    // path and the eviction fallback to broadcast.
    pc.tbCapacity = 64;
    // Exercise the classical scheme's BIAS filter.
    pc.biasCapacity = 4;
    // The software scheme is only coherent when shared-writeable
    // blocks are classified non-cacheable; synthetic traces keep all
    // cross-processor traffic in the shared region.
    pc.nonCacheableBase = sharedRegionBase;
    return pc;
}

/** Current per-block image: the unique dirty copy, else memory. */
Value
imageOf(const Protocol &p, Addr a)
{
    for (ProcId k = 0; k < p.numProcs(); ++k) {
        const CacheLine *l = p.cache(k).peek(a);
        if (l && l->valid() && l->dirty())
            return l->value;
    }
    return p.memValue(a);
}

std::vector<Addr>
touchedBlocks(const std::vector<MemRef> &trace)
{
    std::set<Addr> s;
    for (const MemRef &r : trace)
        s.insert(r.addr);
    return {s.begin(), s.end()};
}

/** Feed the trace through the timed two-bit tier; its per-location
 *  oracle panics on any coherence violation, so the checks here are
 *  the lockstep consistency conditions. */
std::optional<DiffFailure>
runTimedLockstep(const DiffConfig &cfg, const std::vector<MemRef> &trace)
{
    TimedConfig tc;
    tc.protocol = TimedProto::TwoBit;
    tc.numProcs = cfg.numProcs;
    tc.numModules = cfg.numModules;
    tc.cacheGeom.sets = cfg.sets;
    tc.cacheGeom.ways = cfg.ways;

    std::vector<std::deque<MemRef>> perProc(cfg.numProcs);
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (const MemRef &r : trace) {
        perProc.at(r.proc).push_back(r);
        ++(r.write ? writes : reads);
    }

    TimedSystem sys(tc);
    const TimedRunResult r =
        sys.run([&perProc](ProcId p) -> std::optional<MemRef> {
            if (perProc[p].empty())
                return std::nullopt;
            MemRef ref = perProc[p].front();
            perProc[p].pop_front();
            return ref;
        }, trace.size());

    auto fail = [&](const std::string &kind, const std::string &detail) {
        return DiffFailure{"timed_two_bit", kind, trace.size(), detail};
    };
    if (r.refsCompleted != trace.size()) {
        std::ostringstream os;
        os << "timed tier completed " << r.refsCompleted << " of "
           << trace.size() << " references";
        return fail("timed-incomplete", os.str());
    }
    if (r.readsChecked != reads || r.writesRecorded != writes) {
        std::ostringstream os;
        os << "timed oracle saw " << r.readsChecked << " reads / "
           << r.writesRecorded << " writes, trace has " << reads
           << " / " << writes;
        return fail("timed-final", os.str());
    }
    return std::nullopt;
}

} // namespace

std::vector<std::string>
functionalCheckProtocols()
{
    auto names = protocolNames();
    names.push_back("two_bit_nop1");
    return names;
}

std::optional<DiffFailure>
diffTrace(const DiffConfig &cfg, const std::vector<MemRef> &trace,
          const ProtocolMaker &maker)
{
    ProtocolMaker makeOne = maker;
    if (!makeOne) {
        makeOne = [](const std::string &n, const ProtoConfig &c) {
            return makeProtocol(n, c);
        };
    }
    const auto names =
        cfg.protocols.empty() ? functionalCheckProtocols()
                              : cfg.protocols;
    const ProtoConfig pc = makeProtoConfig(cfg);
    const std::vector<Addr> blocks = touchedBlocks(trace);

    std::vector<std::unique_ptr<Protocol>> protos;
    protos.reserve(names.size());
    for (const auto &n : names)
        protos.push_back(makeOne(n, pc));

    // Lockstep replay: one shared oracle; every scheme sees the same
    // write-value sequence, so final images must agree bit-for-bit.
    CoherenceOracle oracle;
    for (std::size_t step = 0; step < trace.size(); ++step) {
        const MemRef &ref = trace[step];
        const Value wval = ref.write ? oracle.freshValue() : 0;
        for (std::size_t i = 0; i < protos.size(); ++i) {
            const Value v =
                protos[i]->access(ref.proc, ref.addr, ref.write, wval);
            if (!ref.write && v != oracle.expected(ref.addr)) {
                std::ostringstream os;
                os << toString(ref) << " returned " << v
                   << " but the most recently written value is "
                   << oracle.expected(ref.addr);
                return DiffFailure{names[i], "stale-read", step,
                                   os.str()};
            }
        }
        if (ref.write)
            oracle.onWrite(ref.addr, wval);

        const bool structural =
            cfg.structuralEvery &&
            (step + 1) % cfg.structuralEvery == 0;
        if (structural) {
            for (std::size_t i = 0; i < protos.size(); ++i) {
                if (auto v = checkProtocolState(*protos[i], oracle,
                                                blocks))
                    return DiffFailure{names[i], v->kind, step,
                                       v->detail};
                if (cfg.nativeInvariants)
                    protos[i]->checkInvariants();
            }
        }
    }

    // End-of-run: structural state, then the cross-scheme image diff.
    for (std::size_t i = 0; i < protos.size(); ++i) {
        if (auto v = checkProtocolState(*protos[i], oracle, blocks))
            return DiffFailure{names[i], v->kind, trace.size(),
                               v->detail};
        if (cfg.nativeInvariants)
            protos[i]->checkInvariants();
    }
    for (const Addr a : blocks) {
        const Value want = oracle.expected(a);
        for (std::size_t i = 0; i < protos.size(); ++i) {
            const Value got = imageOf(*protos[i], a);
            if (got != want) {
                std::ostringstream os;
                os << "final image of block " << a << " is " << got
                   << " but the most recently written value is "
                   << want
                   << (i ? std::string(" (") + names[0] + " agrees "
                           "with the oracle)" : std::string());
                return DiffFailure{names[i], "final-image",
                                   trace.size(), os.str()};
            }
        }
    }

    if (cfg.withTimed)
        return runTimedLockstep(cfg, trace);
    return std::nullopt;
}

ReplaySeed
makeSeed(const DiffConfig &cfg, const std::vector<MemRef> &trace)
{
    ReplaySeed seed;
    seed.numProcs = cfg.numProcs;
    seed.numModules = cfg.numModules;
    seed.sets = cfg.sets;
    seed.ways = cfg.ways;
    seed.protocols = cfg.protocols;
    seed.trace = trace;
    return seed;
}

std::optional<DiffFailure>
replaySeed(const ReplaySeed &seed, bool withTimed)
{
    DiffConfig cfg;
    cfg.numProcs = seed.numProcs;
    cfg.numModules = seed.numModules;
    cfg.sets = seed.sets;
    cfg.ways = seed.ways;
    cfg.protocols = seed.protocols;
    cfg.withTimed = withTimed;
    return diffTrace(cfg, seed.trace);
}

std::vector<MemRef>
fuzzTrace(const FuzzConfig &cfg, std::uint64_t index)
{
    Rng rng = taskRng(cfg.baseSeed, index);
    SyntheticConfig sc;
    sc.numProcs = cfg.diff.numProcs;
    sc.q = cfg.q;
    sc.w = cfg.w;
    sc.sharedBlocks = cfg.sharedBlocks;
    sc.privateBlocks = cfg.privateBlocks;
    sc.hotBlocks = cfg.hotBlocks;
    sc.seed = rng.next();
    SyntheticStream stream(sc);
    return recordStream(stream, cfg.refsPerSeed);
}

FuzzResult
fuzzMany(const FuzzConfig &cfg, unsigned threads,
         const ProtocolMaker &maker)
{
    std::vector<std::optional<DiffFailure>> verdicts(cfg.numSeeds);
    std::vector<std::vector<MemRef>> failing(cfg.numSeeds);

    parallelFor(0, cfg.numSeeds, [&](std::size_t i) {
        auto trace = fuzzTrace(cfg, i);
        verdicts[i] = diffTrace(cfg.diff, trace, maker);
        if (verdicts[i])
            failing[i] = std::move(trace);
    }, threads);

    FuzzResult res;
    res.seedsRun = cfg.numSeeds;
    res.refsReplayed = cfg.numSeeds * cfg.refsPerSeed;
    for (std::size_t i = 0; i < cfg.numSeeds; ++i) {
        if (verdicts[i])
            res.failures.push_back(
                {i, *verdicts[i], std::move(failing[i])});
    }
    return res;
}

} // namespace dir2b
