#include "check/differ.hh"

#include <deque>
#include <set>
#include <sstream>

#include "check/invariants.hh"
#include "check/oracle.hh"
#include "proto/protocol_factory.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "util/parallel.hh"

namespace dir2b
{
namespace
{

ProtoConfig
makeProtoConfig(const DiffConfig &cfg)
{
    ProtoConfig pc;
    pc.numProcs = cfg.numProcs;
    pc.numModules = cfg.numModules;
    pc.cacheGeom.sets = cfg.sets;
    pc.cacheGeom.ways = cfg.ways;
    // Small translation buffer: exercises both the exact-holder-set
    // path and the eviction fallback to broadcast.
    pc.tbCapacity = 64;
    // Exercise the classical scheme's BIAS filter.
    pc.biasCapacity = 4;
    // The software scheme is only coherent when shared-writeable
    // blocks are classified non-cacheable; synthetic traces keep all
    // cross-processor traffic in the shared region.
    pc.nonCacheableBase = sharedRegionBase;
    return pc;
}

/** Current per-block image: the unique dirty copy, else memory. */
Value
imageOf(const Protocol &p, Addr a)
{
    for (ProcId k = 0; k < p.numProcs(); ++k) {
        const CacheLine *l = p.cache(k).peek(a);
        if (l && l->valid() && l->dirty())
            return l->value;
    }
    return p.memValue(a);
}

std::vector<Addr>
touchedBlocks(const std::vector<MemRef> &trace)
{
    std::set<Addr> s;
    for (const MemRef &r : trace)
        s.insert(r.addr);
    return {s.begin(), s.end()};
}

/** Feed the trace through the timed two-bit tier; its per-location
 *  oracle panics on any coherence violation, so the checks here are
 *  the lockstep consistency conditions. */
std::optional<DiffFailure>
runTimedLockstep(const DiffConfig &cfg, const std::vector<MemRef> &trace)
{
    TimedConfig tc;
    tc.protocol = TimedProto::TwoBit;
    tc.numProcs = cfg.numProcs;
    tc.numModules = cfg.numModules;
    tc.cacheGeom.sets = cfg.sets;
    tc.cacheGeom.ways = cfg.ways;

    std::vector<std::deque<MemRef>> perProc(cfg.numProcs);
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (const MemRef &r : trace) {
        perProc.at(r.proc).push_back(r);
        ++(r.write ? writes : reads);
    }

    TimedSystem sys(tc);
    const TimedRunResult r =
        sys.run([&perProc](ProcId p) -> std::optional<MemRef> {
            if (perProc[p].empty())
                return std::nullopt;
            MemRef ref = perProc[p].front();
            perProc[p].pop_front();
            return ref;
        }, trace.size());

    auto fail = [&](const std::string &kind, const std::string &detail) {
        return DiffFailure{"timed_two_bit", kind, trace.size(), detail};
    };
    if (r.refsCompleted != trace.size()) {
        std::ostringstream os;
        os << "timed tier completed " << r.refsCompleted << " of "
           << trace.size() << " references";
        return fail("timed-incomplete", os.str());
    }
    if (r.readsChecked != reads || r.writesRecorded != writes) {
        std::ostringstream os;
        os << "timed oracle saw " << r.readsChecked << " reads / "
           << r.writesRecorded << " writes, trace has " << reads
           << " / " << writes;
        return fail("timed-final", os.str());
    }
    return std::nullopt;
}

} // namespace

std::vector<std::string>
functionalCheckProtocols()
{
    auto names = protocolNames();
    names.push_back("two_bit_nop1");
    return names;
}

std::optional<DiffFailure>
diffTrace(const DiffConfig &cfg, const std::vector<MemRef> &trace,
          const ProtocolMaker &maker)
{
    ProtocolMaker makeOne = maker;
    if (!makeOne) {
        makeOne = [](const std::string &n, const ProtoConfig &c) {
            return makeProtocol(n, c);
        };
    }
    const auto names =
        cfg.protocols.empty() ? functionalCheckProtocols()
                              : cfg.protocols;
    const ProtoConfig pc = makeProtoConfig(cfg);
    const std::vector<Addr> blocks = touchedBlocks(trace);

    std::vector<std::unique_ptr<Protocol>> protos;
    protos.reserve(names.size());
    for (const auto &n : names)
        protos.push_back(makeOne(n, pc));

    // Lockstep replay: one shared oracle; every scheme sees the same
    // write-value sequence, so final images must agree bit-for-bit.
    CoherenceOracle oracle;
    for (std::size_t step = 0; step < trace.size(); ++step) {
        const MemRef &ref = trace[step];
        const Value wval = ref.write ? oracle.freshValue() : 0;
        for (std::size_t i = 0; i < protos.size(); ++i) {
            const Value v =
                protos[i]->access(ref.proc, ref.addr, ref.write, wval);
            if (!ref.write && v != oracle.expected(ref.addr)) {
                std::ostringstream os;
                os << toString(ref) << " returned " << v
                   << " but the most recently written value is "
                   << oracle.expected(ref.addr);
                return DiffFailure{names[i], "stale-read", step,
                                   os.str()};
            }
        }
        if (ref.write)
            oracle.onWrite(ref.addr, wval);

        const bool structural =
            cfg.structuralEvery &&
            (step + 1) % cfg.structuralEvery == 0;
        if (structural) {
            for (std::size_t i = 0; i < protos.size(); ++i) {
                if (auto v = checkProtocolState(*protos[i], oracle,
                                                blocks))
                    return DiffFailure{names[i], v->kind, step,
                                       v->detail};
                if (cfg.nativeInvariants)
                    protos[i]->checkInvariants();
            }
        }
    }

    // End-of-run: structural state, then the cross-scheme image diff.
    for (std::size_t i = 0; i < protos.size(); ++i) {
        if (auto v = checkProtocolState(*protos[i], oracle, blocks))
            return DiffFailure{names[i], v->kind, trace.size(),
                               v->detail};
        if (cfg.nativeInvariants)
            protos[i]->checkInvariants();
    }
    for (const Addr a : blocks) {
        const Value want = oracle.expected(a);
        for (std::size_t i = 0; i < protos.size(); ++i) {
            const Value got = imageOf(*protos[i], a);
            if (got != want) {
                std::ostringstream os;
                os << "final image of block " << a << " is " << got
                   << " but the most recently written value is "
                   << want
                   << (i ? std::string(" (") + names[0] + " agrees "
                           "with the oracle)" : std::string());
                return DiffFailure{names[i], "final-image",
                                   trace.size(), os.str()};
            }
        }
    }

    if (cfg.withTimed)
        return runTimedLockstep(cfg, trace);
    return std::nullopt;
}

ReplaySeed
makeSeed(const DiffConfig &cfg, const std::vector<MemRef> &trace)
{
    ReplaySeed seed;
    seed.numProcs = cfg.numProcs;
    seed.numModules = cfg.numModules;
    seed.sets = cfg.sets;
    seed.ways = cfg.ways;
    seed.protocols = cfg.protocols;
    seed.trace = trace;
    return seed;
}

std::optional<DiffFailure>
replaySeed(const ReplaySeed &seed, bool withTimed)
{
    DiffConfig cfg;
    cfg.numProcs = seed.numProcs;
    cfg.numModules = seed.numModules;
    cfg.sets = seed.sets;
    cfg.ways = seed.ways;
    cfg.protocols = seed.protocols;
    cfg.withTimed = withTimed;
    return diffTrace(cfg, seed.trace);
}

std::vector<MemRef>
fuzzTrace(const FuzzConfig &cfg, std::uint64_t index)
{
    Rng rng = taskRng(cfg.baseSeed, index);
    SyntheticConfig sc;
    sc.numProcs = cfg.diff.numProcs;
    sc.q = cfg.q;
    sc.w = cfg.w;
    sc.sharedBlocks = cfg.sharedBlocks;
    sc.privateBlocks = cfg.privateBlocks;
    sc.hotBlocks = cfg.hotBlocks;
    sc.seed = rng.next();
    SyntheticStream stream(sc);
    return recordStream(stream, cfg.refsPerSeed);
}

namespace
{

/** First differing AccessCounts field, as "name: ref vs subject". */
std::optional<std::string>
countsDiff(const AccessCounts &ref, const AccessCounts &sub)
{
    std::optional<std::string> diff;
    std::vector<std::pair<const char *, std::uint64_t>> refFields;
    AccessCounts::forEachField(
        ref, [&](const char *n, std::uint64_t v) {
            refFields.emplace_back(n, v);
        });
    std::size_t i = 0;
    AccessCounts::forEachField(
        sub, [&](const char *n, std::uint64_t v) {
            if (!diff && refFields[i].second != v) {
                std::ostringstream os;
                os << n << ": " << refFields[i].second << " vs " << v;
                diff = os.str();
            }
            ++i;
        });
    return diff;
}

} // namespace

std::vector<std::pair<std::string, std::string>>
lockstepPairs()
{
    return {{"two_bit", "two_bit_table"},
            {"full_map", "full_map_table"}};
}

std::optional<DiffFailure>
lockstepTrace(const LockstepConfig &cfg,
              const std::vector<MemRef> &trace)
{
    ProtoConfig pc;
    pc.numProcs = cfg.numProcs;
    pc.numModules = cfg.numModules;
    pc.cacheGeom.sets = cfg.sets;
    pc.cacheGeom.ways = cfg.ways;

    const auto ref = makeProtocol(cfg.reference, pc);
    const auto sub = makeProtocol(cfg.subject, pc);

    auto fail = [&](const std::string &kind, std::size_t step,
                    const std::string &detail) {
        return DiffFailure{cfg.subject, kind, step, detail};
    };

    CoherenceOracle oracle;
    for (std::size_t step = 0; step < trace.size(); ++step) {
        const MemRef &r = trace[step];
        const Value wval = r.write ? oracle.freshValue() : 0;
        const Value vRef = ref->access(r.proc, r.addr, r.write, wval);
        const Value vSub = sub->access(r.proc, r.addr, r.write, wval);
        if (r.write)
            oracle.onWrite(r.addr, wval);

        if (vRef != vSub) {
            std::ostringstream os;
            os << toString(r) << " returned " << vRef << " ("
               << cfg.reference << ") vs " << vSub << " ("
               << cfg.subject << ")";
            return fail("lockstep-value", step, os.str());
        }
        if (auto d = countsDiff(ref->lastDelta(), sub->lastDelta())) {
            std::ostringstream os;
            os << toString(r) << " delta diverged: " << *d;
            return fail("lockstep-delta", step, os.str());
        }

        if (cfg.flushEvery && (step + 1) % cfg.flushEvery == 0) {
            const ProcId p = static_cast<ProcId>(
                ((step + 1) / cfg.flushEvery) % cfg.numProcs);
            ref->flushCache(p);
            sub->flushCache(p);
        }
    }

    if (auto d = countsDiff(ref->counts(), sub->counts()))
        return fail("lockstep-counts", trace.size(),
                    "cumulative counters diverged: " + *d);

    for (ProcId p = 0; p < cfg.numProcs; ++p) {
        if (ref->cmdsReceivedBy(p) != sub->cmdsReceivedBy(p) ||
            ref->uselessReceivedBy(p) != sub->uselessReceivedBy(p)) {
            std::ostringstream os;
            os << "per-processor command counters of P" << p
               << " diverged: recv " << ref->cmdsReceivedBy(p)
               << "/" << ref->uselessReceivedBy(p) << " vs "
               << sub->cmdsReceivedBy(p) << "/"
               << sub->uselessReceivedBy(p);
            return fail("lockstep-recv", trace.size(), os.str());
        }
    }

    for (const Addr a : touchedBlocks(trace)) {
        for (ProcId p = 0; p < cfg.numProcs; ++p) {
            const CacheLine *lr = ref->cache(p).peek(a);
            const CacheLine *ls = sub->cache(p).peek(a);
            const bool vr = lr && lr->valid();
            const bool vs = ls && ls->valid();
            if (vr != vs || (vr && (lr->state != ls->state ||
                                    lr->value != ls->value))) {
                std::ostringstream os;
                os << "cache " << p << " line for block " << a
                   << " diverged: "
                   << (vr ? toString(lr->state) : "Invalid") << " vs "
                   << (vs ? toString(ls->state) : "Invalid");
                return fail("lockstep-line", trace.size(), os.str());
            }
        }
        if (imageOf(*ref, a) != imageOf(*sub, a) ||
            ref->memValue(a) != sub->memValue(a)) {
            std::ostringstream os;
            os << "final image of block " << a << " diverged: "
               << imageOf(*ref, a) << "/" << ref->memValue(a)
               << " vs " << imageOf(*sub, a) << "/"
               << sub->memValue(a);
            return fail("lockstep-image", trace.size(), os.str());
        }
    }
    return std::nullopt;
}

std::optional<DiffFailure>
lockstepFuzz(const FuzzConfig &cfg, unsigned threads)
{
    const auto pairs = lockstepPairs();
    // Task grid: pairs x {no flush, flushEvery=97} x seeds.
    const std::size_t variants = pairs.size() * 2;
    std::vector<std::optional<DiffFailure>> verdicts(
        variants * cfg.numSeeds);

    parallelFor(0, verdicts.size(), [&](std::size_t i) {
        const std::size_t seed = i / variants;
        const std::size_t variant = i % variants;
        LockstepConfig lc;
        lc.reference = pairs[variant / 2].first;
        lc.subject = pairs[variant / 2].second;
        lc.numProcs = cfg.diff.numProcs;
        lc.numModules = cfg.diff.numModules;
        lc.sets = cfg.diff.sets;
        lc.ways = cfg.diff.ways;
        // A prime stride so flushes drift across the trace phases.
        lc.flushEvery = (variant % 2) ? 97 : 0;
        verdicts[i] = lockstepTrace(lc, fuzzTrace(cfg, seed));
    }, threads);

    for (const auto &v : verdicts)
        if (v)
            return v;
    return std::nullopt;
}

FuzzResult
fuzzMany(const FuzzConfig &cfg, unsigned threads,
         const ProtocolMaker &maker)
{
    std::vector<std::optional<DiffFailure>> verdicts(cfg.numSeeds);
    std::vector<std::vector<MemRef>> failing(cfg.numSeeds);

    parallelFor(0, cfg.numSeeds, [&](std::size_t i) {
        auto trace = fuzzTrace(cfg, i);
        verdicts[i] = diffTrace(cfg.diff, trace, maker);
        if (verdicts[i])
            failing[i] = std::move(trace);
    }, threads);

    FuzzResult res;
    res.seedsRun = cfg.numSeeds;
    res.refsReplayed = cfg.numSeeds * cfg.refsPerSeed;
    for (std::size_t i = 0; i < cfg.numSeeds; ++i) {
        if (verdicts[i])
            res.failures.push_back(
                {i, *verdicts[i], std::move(failing[i])});
    }
    return res;
}

} // namespace dir2b
