#include "check/seedfile.hh"

#include <fstream>
#include <sstream>

#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace dir2b
{
namespace
{

constexpr const char *seedMagic = "dir2b.seed";
constexpr int seedVersion = 1;

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(s);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

void
writeSeed(std::ostream &os, const ReplaySeed &seed)
{
    os << seedMagic << " " << seedVersion << "\n";
    os << "procs " << seed.numProcs << "\n";
    os << "modules " << seed.numModules << "\n";
    os << "sets " << seed.sets << "\n";
    os << "ways " << seed.ways << "\n";
    // An empty scheme list means "every functional protocol"; it is
    // written as the explicit sentinel so the line always has a value.
    os << "protocols ";
    if (seed.protocols.empty()) {
        os << "default";
    } else {
        for (std::size_t i = 0; i < seed.protocols.size(); ++i)
            os << (i ? "," : "") << seed.protocols[i];
    }
    os << "\n";
    os << "trace " << seed.trace.size() << "\n";
    writeTrace(os, seed.trace);
}

ReplaySeed
readSeed(std::istream &is)
{
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != seedMagic)
        DIR2B_FATAL("not a ", seedMagic, " file");
    if (version != seedVersion)
        DIR2B_FATAL("unsupported seed version ", version,
                    " (this build reads version ", seedVersion, ")");

    ReplaySeed seed;
    std::size_t traceLen = 0;
    std::string key;
    while (is >> key) {
        if (key == "procs") {
            std::uint64_t v;
            is >> v;
            seed.numProcs = static_cast<ProcId>(v);
        } else if (key == "modules") {
            std::uint64_t v;
            is >> v;
            seed.numModules = static_cast<ModuleId>(v);
        } else if (key == "sets") {
            is >> seed.sets;
        } else if (key == "ways") {
            is >> seed.ways;
        } else if (key == "protocols") {
            std::string list;
            is >> list;
            seed.protocols =
                list == "default" ? std::vector<std::string>{}
                                  : splitCommas(list);
        } else if (key == "trace") {
            is >> traceLen;
            break;
        } else {
            DIR2B_FATAL("unknown seed-file key '", key, "'");
        }
        if (!is)
            DIR2B_FATAL("malformed seed-file value for '", key, "'");
    }
    if (!is)
        DIR2B_FATAL("seed file ends before its trace section");

    std::string line;
    std::getline(is, line); // consume the rest of the "trace N" line
    while (seed.trace.size() < traceLen && std::getline(is, line)) {
        MemRef r;
        if (parseTraceLine(line, r))
            seed.trace.push_back(r);
    }
    if (seed.trace.size() != traceLen)
        DIR2B_FATAL("seed file promises ", traceLen,
                    " references but holds ", seed.trace.size());
    if (seed.numProcs == 0)
        DIR2B_FATAL("seed file declares zero processors");
    for (const MemRef &r : seed.trace)
        if (r.proc >= seed.numProcs)
            DIR2B_FATAL("seed trace references processor ", r.proc,
                        " but the system has ", seed.numProcs);
    return seed;
}

void
writeSeedFile(const std::string &path, const ReplaySeed &seed)
{
    std::ofstream os(path);
    if (!os)
        DIR2B_FATAL("cannot open '", path, "' for writing");
    writeSeed(os, seed);
    if (!os.good())
        DIR2B_FATAL("I/O error writing '", path, "'");
}

ReplaySeed
readSeedFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        DIR2B_FATAL("cannot open '", path, "'");
    return readSeed(is);
}

} // namespace dir2b
