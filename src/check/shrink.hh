/**
 * @file
 * Delta-debugging trace minimization.
 *
 * Given a reference trace on which some predicate fails (a coherence
 * violation, a cross-scheme divergence), shrinkTrace() removes as many
 * references as possible while the predicate keeps failing, in the
 * classic ddmin style: coarse chunk removal with halving granularity,
 * then single-reference removal to a fixpoint.  The result is
 * 1-minimal — removing any single remaining reference makes the
 * failure disappear — which is what makes a fuzzer counterexample
 * readable.
 *
 * The predicate must be deterministic (same trace, same verdict);
 * every replay in this repository is.
 */

#ifndef DIR2B_CHECK_SHRINK_HH
#define DIR2B_CHECK_SHRINK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** Verdict function: true when the trace still exhibits the failure. */
using FailPredicate =
    std::function<bool(const std::vector<MemRef> &)>;

/** Statistics of one shrink run. */
struct ShrinkStats
{
    std::uint64_t attempts = 0;  ///< candidate traces evaluated
    std::size_t initialSize = 0;
    std::size_t finalSize = 0;
};

/**
 * Minimize `trace` under `fails` (which must hold for `trace` itself;
 * panics otherwise).  Stops early after `maxAttempts` predicate
 * evaluations, returning the best trace found so far (still failing).
 */
std::vector<MemRef>
shrinkTrace(std::vector<MemRef> trace, const FailPredicate &fails,
            std::uint64_t maxAttempts = 100000,
            ShrinkStats *stats = nullptr);

} // namespace dir2b

#endif // DIR2B_CHECK_SHRINK_HH
