/**
 * @file
 * Replayable counterexample files for the differential fuzzer.
 *
 * When the fuzzer finds a divergence it shrinks the trace and writes a
 * *seed file*: the complete recipe — system configuration, scheme
 * list, and the minimized reference trace — needed to reproduce the
 * failure.  tools/replay_check loads one and re-runs the identical
 * differential check.
 *
 * Format (text, line-oriented; `#` starts a comment):
 *
 *   dir2b.seed 1
 *   procs 3
 *   modules 2
 *   sets 4
 *   ways 2
 *   protocols two_bit,full_map
 *   trace 5
 *   0 R 0x2a
 *   1 W 0x2a
 *   ...
 *
 * `protocols default` stands for the empty list, i.e. "cross-check
 * every functional scheme".
 *
 * The trace lines are exactly the trace_io format, so a seed's tail
 * can be fed to any trace-replaying tool unchanged.
 */

#ifndef DIR2B_CHECK_SEEDFILE_HH
#define DIR2B_CHECK_SEEDFILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** Everything needed to reproduce one differential-check run. */
struct ReplaySeed
{
    ProcId numProcs = 2;
    ModuleId numModules = 1;
    std::size_t sets = 4;
    std::size_t ways = 2;
    /** Schemes to cross-check; empty means every functional scheme. */
    std::vector<std::string> protocols;
    std::vector<MemRef> trace;
};

/** Serialise a seed. */
void writeSeed(std::ostream &os, const ReplaySeed &seed);

/** Parse a seed; DIR2B_FATAL on malformed input. */
ReplaySeed readSeed(std::istream &is);

/** File convenience wrappers; DIR2B_FATAL on I/O failure. */
void writeSeedFile(const std::string &path, const ReplaySeed &seed);
ReplaySeed readSeedFile(const std::string &path);

} // namespace dir2b

#endif // DIR2B_CHECK_SEEDFILE_HH
