#include "check/explorer.hh"

#include <deque>
#include <sstream>
#include <unordered_set>

#include "core/two_bit_protocol.hh"
#include "core/two_bit_wt_protocol.hh"
#include "proto/protocol_factory.hh"
#include "proto/table_engine.hh"
#include "util/parallel.hh"

namespace dir2b
{

std::string
toString(const CheckAction &a)
{
    std::ostringstream os;
    os << "P" << a.proc << " ";
    switch (a.kind) {
      case CheckAction::Kind::Load:
        os << "LOAD " << a.addr;
        break;
      case CheckAction::Kind::Store:
        os << "STORE " << a.addr;
        break;
      case CheckAction::Kind::Flush:
        os << "FLUSH";
        break;
    }
    return os.str();
}

bool
protocolSupportsFlush(const std::string &name)
{
    ProtoConfig cfg;
    cfg.numProcs = 2;
    return makeProtocol(name, cfg)->supportsFlush();
}

namespace
{

/** A concrete replayed state: protocol plus last-writer shadow. */
struct Sim
{
    std::unique_ptr<Protocol> proto;
    CoherenceOracle oracle;
};

ProtoConfig
makeProtoConfig(const ExplorerConfig &cfg)
{
    ProtoConfig pc;
    pc.numProcs = cfg.numProcs;
    pc.numModules = cfg.numModules;
    pc.cacheGeom.sets = cfg.sets;
    pc.cacheGeom.ways = cfg.ways;
    // The translation buffer must not evict (hidden state); a handful
    // of blocks never comes close to this capacity.
    pc.tbCapacity = 1024;
    // The software scheme is only coherent for blocks its compiler
    // classified shared-writeable; every explorer block is written by
    // several processors, so classify them all.
    if (cfg.protocol == "software")
        pc.nonCacheableBase = 0;
    return pc;
}

Sim
makeSim(const ExplorerConfig &cfg)
{
    return Sim{makeProtocol(cfg.protocol, makeProtoConfig(cfg)), {}};
}

/** Execute one action; reports a stale LOAD as a violation. */
std::optional<Violation>
applyAction(Sim &sim, const CheckAction &act)
{
    switch (act.kind) {
      case CheckAction::Kind::Load: {
        const Value v = sim.proto->access(act.proc, act.addr, false);
        const Value want = sim.oracle.expected(act.addr);
        if (v != want) {
            std::ostringstream os;
            os << toString(act) << " returned " << v
               << " but the most recently written value is " << want;
            return Violation{"stale-read", os.str()};
        }
        break;
      }
      case CheckAction::Kind::Store: {
        const Value wval = sim.oracle.freshValue();
        sim.proto->access(act.proc, act.addr, true, wval);
        sim.oracle.onWrite(act.addr, wval);
        break;
      }
      case CheckAction::Kind::Flush:
        sim.proto->flushCache(act.proc);
        break;
    }
    return std::nullopt;
}

/**
 * Abstraction signature: per-cache line states with value freshness,
 * per-block memory freshness, and the two-bit global state where the
 * scheme keeps one.  Finite alphabet, hence a finite reachable set.
 */
std::string
signatureOf(const Sim &sim, const ExplorerConfig &cfg)
{
    const Protocol &p = *sim.proto;
    const auto *tb = dynamic_cast<const TwoBitProtocol *>(&p);
    const auto *wt = dynamic_cast<const TwoBitWtProtocol *>(&p);
    const auto *tab = dynamic_cast<const TableProtocol *>(&p);

    std::string sig;
    sig.reserve((p.numProcs() + 2) * cfg.numBlocks + 4);
    for (Addr a = 0; a < cfg.numBlocks; ++a) {
        for (ProcId k = 0; k < p.numProcs(); ++k) {
            const CacheLine *l = p.cache(k).peek(a);
            if (!l || !l->valid()) {
                sig += '-';
                continue;
            }
            sig += "ISERMO"[static_cast<unsigned>(l->state)];
            sig += l->value == sim.oracle.expected(a) ? 'f' : 's';
        }
        sig += p.memValue(a) == sim.oracle.expected(a) ? 'F' : 'S';
        if (tb)
            sig += '0' + static_cast<char>(tb->globalState(a));
        else if (wt)
            sig += '0' + static_cast<char>(wt->globalState(a));
        else if (tab)
            sig += '0' + static_cast<char>(tab->dirStateOf(a));
        sig += '|';
    }
    return sig;
}

std::vector<CheckAction>
actionAlphabet(const ExplorerConfig &cfg)
{
    std::vector<CheckAction> acts;
    for (ProcId k = 0; k < cfg.numProcs; ++k) {
        for (Addr a = 0; a < cfg.numBlocks; ++a) {
            acts.push_back({CheckAction::Kind::Load, k, a});
            acts.push_back({CheckAction::Kind::Store, k, a});
        }
        if (cfg.includeFlush && protocolSupportsFlush(cfg.protocol))
            acts.push_back({CheckAction::Kind::Flush, k, 0});
    }
    return acts;
}

} // namespace

ExploreResult
explore(const ExplorerConfig &cfg)
{
    ExploreResult res;
    const auto alphabet = actionAlphabet(cfg);
    std::vector<Addr> blocks;
    for (Addr a = 0; a < cfg.numBlocks; ++a)
        blocks.push_back(a);

    // BFS over abstraction signatures; each frontier entry carries the
    // action trail that reproduces its representative concrete state.
    std::unordered_set<std::string> seen;
    std::deque<std::vector<CheckAction>> frontier;

    {
        Sim init = makeSim(cfg);
        if (const auto *tab =
                dynamic_cast<const TableProtocol *>(init.proto.get())) {
            res.totalRows = tab->table().rows.size();
            res.rowsFired.assign(res.totalRows, 0);
        }
        seen.insert(signatureOf(init, cfg));
        frontier.push_back({});
        res.statesVisited = 1;
    }

    auto fail = [&](const Violation &v,
                    const std::vector<CheckAction> &trail) {
        res.violations.push_back(v);
        res.trail = trail;
    };

    // Row coverage: union the fire counts of every replayed sim so a
    // closed search proves exactly which table rows are live.
    auto harvest = [&](const Sim &sim) {
        const auto *tab =
            dynamic_cast<const TableProtocol *>(sim.proto.get());
        if (!tab)
            return;
        const auto &hits = tab->rowHits();
        for (std::size_t i = 0; i < hits.size(); ++i)
            res.rowsFired[i] += hits[i];
    };

    bool truncated = false;
    while (!frontier.empty() && res.violations.empty()) {
        const std::vector<CheckAction> trail =
            std::move(frontier.front());
        frontier.pop_front();
        if (trail.size() >= cfg.maxDepth) {
            // This state was reached but never expanded: the search
            // is depth-bounded, not closed.
            truncated = true;
            continue;
        }
        res.depthReached =
            std::max<unsigned>(res.depthReached,
                               static_cast<unsigned>(trail.size()) + 1);

        for (const CheckAction &act : alphabet) {
            // Replay the representative, then take one step.
            Sim sim = makeSim(cfg);
            for (const CheckAction &past : trail)
                applyAction(sim, past);

            std::vector<CheckAction> next = trail;
            next.push_back(act);

            const bool countable =
                act.kind != CheckAction::Kind::Flush &&
                broadcastDeltaApplies(*sim.proto);
            PreAccess pre;
            MemRef ref{act.proc, act.addr,
                       act.kind == CheckAction::Kind::Store};
            if (countable)
                pre = snapshotPreAccess(*sim.proto, ref);

            if (auto v = applyAction(sim, act)) {
                harvest(sim);
                fail(*v, next);
                break;
            }
            ++res.transitionsChecked;
            harvest(sim);

            if (countable) {
                if (auto v = checkBroadcastDelta(
                        *sim.proto, pre, ref, sim.proto->lastDelta())) {
                    fail(*v, next);
                    break;
                }
            }
            if (auto v =
                    checkProtocolState(*sim.proto, sim.oracle, blocks)) {
                fail(*v, next);
                break;
            }

            const std::string sig = signatureOf(sim, cfg);
            if (seen.size() >= cfg.maxStates)
                continue;
            if (seen.insert(sig).second) {
                ++res.statesVisited;
                frontier.push_back(std::move(next));
            }
        }
    }

    res.closed = res.violations.empty() && frontier.empty() &&
                 !truncated && seen.size() < cfg.maxStates;

    if (res.totalRows > 0) {
        Sim probe = makeSim(cfg);
        const auto &table =
            dynamic_cast<const TableProtocol &>(*probe.proto).table();
        for (std::size_t i = 0; i < res.totalRows; ++i)
            if (res.rowsFired[i] == 0)
                res.unreachableRows.push_back(describeRow(table, i));
    }
    return res;
}

std::vector<ExploreResult>
exploreGrid(const std::vector<ExplorerConfig> &grid, unsigned threads)
{
    std::vector<ExploreResult> out(grid.size());
    parallelFor(0, grid.size(),
                [&](std::size_t i) { out[i] = explore(grid[i]); },
                threads);
    return out;
}

std::vector<ExplorerConfig>
defaultExplorerGrid()
{
    std::vector<ExplorerConfig> grid;
    auto names = protocolNames();
    names.push_back("two_bit_nop1");
    for (const auto &name : names) {
        for (std::size_t blocks : {1u, 2u}) {
            ExplorerConfig c;
            c.protocol = name;
            c.numProcs = 2;
            c.numBlocks = blocks;
            grid.push_back(c);
        }
        // Direct-mapped single-frame cell: every second fill evicts,
        // covering the §3.2.1 replacement interleavings.
        ExplorerConfig tight;
        tight.protocol = name;
        tight.numProcs = 2;
        tight.numBlocks = 2;
        tight.sets = 1;
        tight.ways = 1;
        grid.push_back(tight);
    }
    return grid;
}

} // namespace dir2b
