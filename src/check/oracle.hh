/**
 * @file
 * Coherence oracle for the functional tier.
 *
 * The paper's definition (§1): "a multiprocessor system is cache
 * coherent if a read access to any block always returns the most
 * recently written value of that block."  In the functional tier every
 * access is an atomic transaction, so "most recently written" is
 * unambiguous: the oracle shadows the last value written to each block
 * (blocks start at initialValue) and checks every read against it.
 *
 * Writes carry fresh nonces so that any protocol bug that returns a
 * stale or cross-block value is detected on the very next read.
 */

#ifndef DIR2B_CHECK_ORACLE_HH
#define DIR2B_CHECK_ORACLE_HH

#include <unordered_map>

#include "util/logging.hh"
#include "util/types.hh"

namespace dir2b
{

/** Last-writer-wins shadow memory. */
class CoherenceOracle
{
  public:
    /** Record a completed write of v to block a. */
    void
    onWrite(Addr a, Value v)
    {
        shadow_[a] = v;
        ++writes_;
    }

    /** Check a completed read of block a returning v; panics with a
     *  diagnostic on a coherence violation. */
    void
    onRead(Addr a, Value v)
    {
        ++reads_;
        const Value want = expected(a);
        if (v != want) {
            DIR2B_PANIC("coherence violation on block ", a,
                        ": read returned ", v, " but the most recently "
                        "written value is ", want);
        }
    }

    /** The value a coherent read of block a must return. */
    Value
    expected(Addr a) const
    {
        auto it = shadow_.find(a);
        return it != shadow_.end() ? it->second : initialValue(a);
    }

    /** Produce a fresh, globally unique value for the next write. */
    Value
    freshValue()
    {
        return ++nonce_ * 0x9e3779b97f4a7c15ULL + 1;
    }

    std::uint64_t readsChecked() const { return reads_; }
    std::uint64_t writesRecorded() const { return writes_; }

  private:
    std::unordered_map<Addr, Value> shadow_;
    Value nonce_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace dir2b

#endif // DIR2B_CHECK_ORACLE_HH
