/**
 * @file
 * Cross-protocol differential fuzzing.
 *
 * Every functional scheme implements the same contract — a read
 * returns the most recently written value, and identical reference
 * streams force identical final memory images (write values are the
 * same deterministic nonce sequence in every scheme).  The differ
 * exploits that: it drives one seeded random trace through every
 * scheme in lockstep, checks each read against the last-writer
 * oracle, runs the structural invariant suite periodically, and at
 * the end cross-checks the per-block final images between schemes
 * and against the oracle.  Optionally the same trace also runs
 * through the timed two-bit tier (per-processor program order
 * preserved); blocks written by a single processor must then reach
 * the same final value there too, and the timed tier's own
 * per-location oracle validates the rest.
 *
 * Failures come back as data (DiffFailure), never aborts, so the
 * shrinker (check/shrink.hh) can minimize the trace and write a
 * replayable seed file (check/seedfile.hh).
 *
 * Batches of seeds dispatch through the shared worker pool with the
 * deterministic per-task RNG split, so a fuzz campaign's verdict is
 * independent of the thread count.
 */

#ifndef DIR2B_CHECK_DIFFER_HH
#define DIR2B_CHECK_DIFFER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/seedfile.hh"
#include "proto/protocol.hh"
#include "trace/reference.hh"

namespace dir2b
{

/** Scheme constructor hook; tests inject deliberately broken
 *  protocols through it.  Defaults to makeProtocol(). */
using ProtocolMaker = std::function<std::unique_ptr<Protocol>(
    const std::string &, const ProtoConfig &)>;

/** Knobs of one differential replay. */
struct DiffConfig
{
    /** Schemes to cross-check; empty = functionalCheckProtocols(). */
    std::vector<std::string> protocols;
    ProcId numProcs = 3;
    ModuleId numModules = 2;
    std::size_t sets = 4;
    std::size_t ways = 2;
    /** Run the structural invariant suite every N references
     *  (0 = only at the end). */
    std::uint64_t structuralEvery = 64;
    /** Also call each scheme's own (panicking) checkInvariants();
     *  disable when replaying a known-broken scheme so the failure
     *  reaches the shrinker instead of aborting. */
    bool nativeInvariants = true;
    /** Drive the timed two-bit tier with the same trace. */
    bool withTimed = false;
};

/** One cross-check failure, as data. */
struct DiffFailure
{
    /** Scheme that diverged ("timed_two_bit" for the timed tier). */
    std::string protocol;
    /** Violation class (see check/invariants.hh) or "final-image" /
     *  "timed-final" / "timed-incomplete". */
    std::string kind;
    /** Trace index at which the failure surfaced (trace size for
     *  end-of-run checks). */
    std::size_t step = 0;
    std::string detail;
};

/** The scheme list the fuzzer cross-checks by default: every factory
 *  protocol plus the no-Present1 ablation. */
std::vector<std::string> functionalCheckProtocols();

/** Replay one trace through every scheme; first failure or nullopt. */
std::optional<DiffFailure>
diffTrace(const DiffConfig &cfg, const std::vector<MemRef> &trace,
          const ProtocolMaker &maker = {});

/** Package a failing configuration+trace as a replayable seed. */
ReplaySeed makeSeed(const DiffConfig &cfg,
                    const std::vector<MemRef> &trace);

/** Re-run the differential check a seed file describes. */
std::optional<DiffFailure> replaySeed(const ReplaySeed &seed,
                                      bool withTimed = false);

/** Knobs of a fuzz campaign. */
struct FuzzConfig
{
    DiffConfig diff;
    /** Independent random traces to generate and cross-check. */
    std::uint64_t numSeeds = 8;
    std::uint64_t refsPerSeed = 2000;
    /** Campaign seed; per-trace streams derive via taskRng(). */
    std::uint64_t baseSeed = 2024;
    /** Synthetic stream shape (deliberately contended). */
    double q = 0.35;
    double w = 0.4;
    std::size_t sharedBlocks = 6;
    std::size_t privateBlocks = 12;
    std::size_t hotBlocks = 4;
};

/** One failing seed of a campaign, with its trace for shrinking. */
struct FuzzFailure
{
    std::uint64_t seedIndex = 0;
    DiffFailure failure;
    std::vector<MemRef> trace;
};

/** Campaign outcome. */
struct FuzzResult
{
    std::uint64_t seedsRun = 0;
    std::uint64_t refsReplayed = 0;
    std::vector<FuzzFailure> failures;
};

/** Generate the trace of campaign task `index` (deterministic). */
std::vector<MemRef> fuzzTrace(const FuzzConfig &cfg,
                              std::uint64_t index);

/** Run a campaign on the shared pool; verdicts are independent of
 *  the thread count. */
FuzzResult fuzzMany(const FuzzConfig &cfg, unsigned threads = 0,
                    const ProtocolMaker &maker = {});

/**
 * Cross-interpreter lockstep: a hand-written scheme and its
 * table-driven re-expression replay one trace side by side and must
 * agree on strictly more than the differ checks — the return value of
 * every access, every per-access counter delta field by field, the
 * cumulative counters, the per-processor received-command counters,
 * every cache line (tag, state, value), and the final per-block
 * images.  This is the contract that lets a transition table replace
 * a hand-written protocol.
 */
struct LockstepConfig
{
    /** Hand-written scheme (the semantics of record). */
    std::string reference = "two_bit";
    /** Table-driven re-expression under test. */
    std::string subject = "two_bit_table";
    ProcId numProcs = 3;
    ModuleId numModules = 2;
    std::size_t sets = 4;
    std::size_t ways = 2;
    /** Flush a rotating processor's cache every N references
     *  (0 = never); drives the table's evict rows against the
     *  hand-written flushCache path. */
    std::uint64_t flushEvery = 0;
};

/** The (reference, subject) pairs held bit-identical by construction:
 *  {two_bit, two_bit_table} and {full_map, full_map_table}. */
std::vector<std::pair<std::string, std::string>> lockstepPairs();

/** Replay one trace through both interpreters; first divergence or
 *  nullopt.  DiffFailure::protocol names the subject. */
std::optional<DiffFailure>
lockstepTrace(const LockstepConfig &cfg,
              const std::vector<MemRef> &trace);

/** Campaign: every lockstep pair over the fuzz traces of `cfg`, with
 *  and without periodic flushes.  First divergence or nullopt. */
std::optional<DiffFailure>
lockstepFuzz(const FuzzConfig &cfg, unsigned threads = 0);

} // namespace dir2b

#endif // DIR2B_CHECK_DIFFER_HH
