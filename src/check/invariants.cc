#include "check/invariants.hh"

#include <sstream>

#include "core/two_bit_protocol.hh"
#include "core/two_bit_wt_protocol.hh"
#include "proto/table_engine.hh"

namespace dir2b
{
namespace
{

std::optional<Violation>
violation(const std::string &kind, const std::string &detail)
{
    return Violation{kind, detail};
}

/** Per-block census of cached copies. */
struct Copies
{
    std::size_t holders = 0;
    std::size_t modified = 0;
};

Copies
census(const Protocol &proto, Addr a)
{
    Copies c;
    for (ProcId p = 0; p < proto.numProcs(); ++p) {
        const CacheLine *l = proto.cache(p).peek(a);
        if (!l || !l->valid())
            continue;
        ++c.holders;
        if (l->dirty())
            ++c.modified;
    }
    return c;
}

std::optional<Violation>
checkTwoBitMap(GlobalState st, Addr a, const Copies &c,
               bool writeThrough)
{
    std::ostringstream os;
    os << "block " << a << " is " << toString(st) << " but has "
       << c.holders << " holder(s), " << c.modified << " modified";
    const auto bad = violation("map-mismatch", os.str());

    switch (st) {
      case GlobalState::Absent:
        if (c.holders != 0)
            return bad;
        break;
      case GlobalState::Present1:
        if (c.holders != 1 || c.modified != 0)
            return bad;
        break;
      case GlobalState::PresentStar:
        // Zero or more clean copies: the count is unknowable because
        // clean ejections cannot be decremented (§3.1 footnote 2).
        if (c.modified != 0)
            return bad;
        break;
      case GlobalState::PresentM:
        if (writeThrough || c.holders != 1 || c.modified != 1)
            return bad;
        break;
    }
    return std::nullopt;
}

/** Directory-vs-census check for table protocols: the table declares
 *  per-state holder/modified bounds, so no scheme-specific code. */
std::optional<Violation>
checkTableMap(const TableProtocol &tp, Addr a, const Copies &c)
{
    const TransitionTable &t = tp.table();
    const std::uint8_t st = tp.dirStateOf(a);
    if (st >= t.stateNames.size()) {
        std::ostringstream os;
        os << "block " << a << " directory state " << unsigned(st)
           << " is out of range for table " << t.name;
        return violation("map-mismatch", os.str());
    }
    const StateConstraint &want = t.constraints[st];
    if (c.holders < want.minHolders || c.holders > want.maxHolders ||
        c.modified < want.minModified ||
        c.modified > want.maxModified) {
        std::ostringstream os;
        os << "block " << a << " is " << t.stateNames[st]
           << " but has " << c.holders << " holder(s), " << c.modified
           << " modified";
        return violation("map-mismatch", os.str());
    }
    return std::nullopt;
}

} // namespace

std::optional<Violation>
checkProtocolState(const Protocol &proto, const CoherenceOracle &oracle,
                   const std::vector<Addr> &blocks)
{
    const auto *twoBit = dynamic_cast<const TwoBitProtocol *>(&proto);
    const auto *wt = dynamic_cast<const TwoBitWtProtocol *>(&proto);
    const auto *tab = dynamic_cast<const TableProtocol *>(&proto);

    for (const Addr a : blocks) {
        const Value want = oracle.expected(a);
        const Copies c = census(proto, a);

        if (c.modified > 1) {
            std::ostringstream os;
            os << "block " << a << " is modified in " << c.modified
               << " caches";
            return violation("multi-modified", os.str());
        }

        for (ProcId p = 0; p < proto.numProcs(); ++p) {
            const CacheLine *l = proto.cache(p).peek(a);
            if (!l || !l->valid() || l->value == want)
                continue;
            std::ostringstream os;
            os << "cache " << p << " holds " << toString(l->state)
               << " copy of block " << a << " with value " << l->value
               << " but the most recently written value is " << want;
            return violation("stale-copy", os.str());
        }

        if (c.modified == 0 && proto.memValue(a) != want) {
            std::ostringstream os;
            os << "no modified copy of block " << a
               << " exists but memory holds " << proto.memValue(a)
               << " instead of " << want;
            return violation("stale-memory", os.str());
        }

        if (twoBit) {
            auto v = checkTwoBitMap(twoBit->globalState(a), a, c,
                                    false);
            if (v)
                return v;
        } else if (wt) {
            auto v = checkTwoBitMap(wt->globalState(a), a, c, true);
            if (v)
                return v;
        } else if (tab) {
            auto v = checkTableMap(*tab, a, c);
            if (v)
                return v;
        }
    }
    return std::nullopt;
}

bool
broadcastDeltaApplies(const Protocol &proto)
{
    // two_bit_table is held bit-identical to two_bit, so the §4.2
    // command-count law binds it too.
    return (proto.name() == "two_bit" ||
            proto.name() == "two_bit_nop1" ||
            proto.name() == "two_bit_table") &&
           !proto.config().snoopFilter;
}

PreAccess
snapshotPreAccess(const Protocol &proto, const MemRef &ref)
{
    PreAccess pre;
    if (const auto *tb = dynamic_cast<const TwoBitProtocol *>(&proto))
        pre.global = tb->globalState(ref.addr);
    else if (proto.name() == "two_bit_table")
        // The two_bit table's state indices are the GlobalState values.
        pre.global = static_cast<GlobalState>(
            dynamic_cast<const TableProtocol &>(proto)
                .dirStateOf(ref.addr));
    const CacheLine *l = proto.cache(ref.proc).peek(ref.addr);
    pre.hit = l && l->valid();
    pre.dirtyHit = pre.hit && l->dirty();
    const Copies c = census(proto, ref.addr);
    pre.otherHolders = c.holders - (pre.hit ? 1 : 0);
    return pre;
}

std::optional<Violation>
checkBroadcastDelta(const Protocol &proto, const PreAccess &pre,
                    const MemRef &ref, const AccessCounts &delta)
{
    const std::size_t n = proto.numProcs();
    std::uint64_t wantCmds = 0;
    std::uint64_t wantUseless = 0;
    const char *situation = "no broadcast";

    if (!ref.write) {
        if (!pre.hit && pre.global == GlobalState::PresentM) {
            // T_RM: BROADQUERY(read) reaches n-1 caches; only the
            // owner's check is useful.
            wantCmds = n - 1;
            wantUseless = n - 2;
            situation = "read miss on PresentM (T_RM)";
        }
    } else if (pre.hit && !pre.dirtyHit) {
        if (pre.global == GlobalState::PresentStar) {
            // T_WH: BROADINV reaches n-1 caches; the checks at actual
            // holders are useful.
            wantCmds = n - 1;
            wantUseless = (n - 1) - pre.otherHolders;
            situation = "clean write hit on Present* (T_WH)";
        }
        // Present1: MGRANTED with no broadcast (§3.2.4 case 1).
    } else if (!pre.hit) {
        if (pre.global == GlobalState::PresentM) {
            wantCmds = n - 1;
            wantUseless = n - 2;
            situation = "write miss on PresentM (T_WM)";
        } else if (isPresentClean(pre.global)) {
            wantCmds = n - 1;
            wantUseless = (n - 1) - pre.otherHolders;
            situation = "write miss on clean-present (T_WM)";
        }
    }

    if (delta.broadcastCmds != wantCmds ||
        delta.uselessCmds != wantUseless) {
        std::ostringstream os;
        os << toString(ref) << " [" << situation << ", prior state "
           << toString(pre.global) << ", " << pre.otherHolders
           << " other holder(s)]: expected " << wantCmds
           << " broadcast deliveries / " << wantUseless
           << " useless, measured " << delta.broadcastCmds << " / "
           << delta.uselessCmds;
        return violation("count-mismatch", os.str());
    }
    return std::nullopt;
}

} // namespace dir2b
