#include "check/shrink.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dir2b
{
namespace
{

/** trace with [begin, begin+len) removed. */
std::vector<MemRef>
without(const std::vector<MemRef> &trace, std::size_t begin,
        std::size_t len)
{
    std::vector<MemRef> out;
    out.reserve(trace.size() - len);
    out.insert(out.end(), trace.begin(), trace.begin() + begin);
    out.insert(out.end(), trace.begin() + begin + len, trace.end());
    return out;
}

} // namespace

std::vector<MemRef>
shrinkTrace(std::vector<MemRef> trace, const FailPredicate &fails,
            std::uint64_t maxAttempts, ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &st = stats ? *stats : local;
    st.initialSize = trace.size();

    auto tryRemove = [&](std::size_t begin, std::size_t len) {
        if (st.attempts >= maxAttempts)
            return false;
        ++st.attempts;
        auto candidate = without(trace, begin, len);
        if (fails(candidate)) {
            trace = std::move(candidate);
            return true;
        }
        return false;
    };

    ++st.attempts;
    DIR2B_ASSERT(fails(trace),
                 "shrinkTrace called with a passing trace of ",
                 trace.size(), " references");

    // Coarse phase: remove chunks, halving the chunk size.
    for (std::size_t chunk = trace.size() / 2; chunk >= 1; chunk /= 2) {
        bool any = true;
        while (any && st.attempts < maxAttempts) {
            any = false;
            // Scan back-to-front so surviving indices stay valid.
            for (std::size_t begin = trace.size();
                 begin >= chunk && trace.size() > chunk;) {
                begin -= chunk;
                if (begin >= trace.size())
                    continue;
                const std::size_t len =
                    std::min(chunk, trace.size() - begin);
                if (tryRemove(begin, len))
                    any = true;
            }
        }
        if (chunk == 1)
            break;
    }

    // Fine phase: single removals until a fixpoint (1-minimality).
    bool any = true;
    while (any && st.attempts < maxAttempts) {
        any = false;
        for (std::size_t i = trace.size(); i > 0;) {
            --i;
            if (i < trace.size() && tryRemove(i, 1))
                any = true;
        }
    }

    st.finalSize = trace.size();
    return trace;
}

} // namespace dir2b
