/**
 * @file
 * dir2b.check artifact assembly for the two checking engines.
 *
 * Both the exhaustive explorer and the differential fuzzer serialize
 * their outcomes as cells of a schema-stamped JSON artifact (schema
 * "dir2b.check", same envelope as the bench sweeps) so CI can diff
 * verification coverage across commits exactly like it diffs
 * performance numbers.  Cells carry a "section" discriminator:
 * "explore" for model-checker cells, "fuzz" for fuzzer cells,
 * "replay" for replay_check verdicts.
 */

#ifndef DIR2B_CHECK_CHECK_REPORT_HH
#define DIR2B_CHECK_CHECK_REPORT_HH

#include "check/differ.hh"
#include "check/explorer.hh"
#include "report/report.hh"

namespace dir2b
{

/** One "explore" cell: configuration axes plus search outcome. */
Json exploreCellToJson(const ExplorerConfig &cfg,
                       const ExploreResult &res);

/** One "fuzz" cell: campaign axes plus verdict. */
Json fuzzCellToJson(const FuzzConfig &cfg, const FuzzResult &res);

/** Assemble explorer + fuzzer results into a dir2b.check artifact
 *  (without the volatile meta block; callers stampMeta()). */
Json makeEngineArtifact(const std::string &tool,
                        const std::vector<ExplorerConfig> &grid,
                        const std::vector<ExploreResult> &explored,
                        const FuzzConfig *fuzzCfg,
                        const FuzzResult *fuzzed);

} // namespace dir2b

#endif // DIR2B_CHECK_CHECK_REPORT_HH
