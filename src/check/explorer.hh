/**
 * @file
 * Exhaustive protocol state-space exploration over small
 * configurations.
 *
 * The engine enumerates every interleaving of LOAD / STORE / flush
 * (eject) actions by every processor over a handful of blocks, in the
 * style of explicit-state protocol model checking: states are
 * identified by an abstraction signature — per-cache line states plus
 * value freshness relative to the last-writer oracle, memory
 * freshness, and the two-bit global state where the scheme keeps one —
 * and a breadth-first search expands every action from every reachable
 * signature, checking the full invariant suite (check/invariants.hh)
 * after each transition.
 *
 * Concrete write values are abstracted to fresh/stale, which is what
 * makes the reachable signature set finite; the search is sound
 * (violations reported are real, with the action trail that produced
 * them) and, for configurations without hidden replacement state
 * (direct-mapped caches, or capacity >= blocks so no replacement
 * occurs), complete up to the depth bound.
 *
 * Grids of configurations dispatch through the shared worker pool
 * (util/parallel.hh); each cell is deterministic, so results are
 * independent of the thread count.
 */

#ifndef DIR2B_CHECK_EXPLORER_HH
#define DIR2B_CHECK_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "proto/protocol.hh"

namespace dir2b
{

/** One explorer action: a memory reference or a cache flush. */
struct CheckAction
{
    enum class Kind : std::uint8_t { Load, Store, Flush };
    Kind kind = Kind::Load;
    ProcId proc = 0;
    /** Block address (unused for Flush). */
    Addr addr = 0;
};

/** Render "P0 LOAD 1" / "P1 FLUSH" for diagnostics and reports. */
std::string toString(const CheckAction &a);

/** One explorer cell: a protocol at a small configuration. */
struct ExplorerConfig
{
    /** Factory name of the scheme under test. */
    std::string protocol = "two_bit";
    /** Processor-cache pairs (2-3 keeps the closure small). */
    ProcId numProcs = 2;
    /** Distinct block addresses the actions range over (1-2). */
    std::size_t numBlocks = 1;
    /** Cache geometry.  Keep it free of hidden replacement state:
     *  ways == 1 (deterministic victim) or sets*ways >= numBlocks
     *  (no replacement). */
    std::size_t sets = 2;
    std::size_t ways = 2;
    /** Memory modules. */
    ModuleId numModules = 1;
    /** Include per-processor flush (the §2.2 eject action) when the
     *  scheme implements it. */
    bool includeFlush = true;
    /** BFS depth bound (actions from the initial state); the closure
     *  is normally reached well before this. */
    unsigned maxDepth = 12;
    /** Safety valve on distinct signatures. */
    std::size_t maxStates = 200000;
};

/** Outcome of exploring one cell. */
struct ExploreResult
{
    /** Distinct abstraction signatures reached. */
    std::uint64_t statesVisited = 0;
    /** Transitions executed and invariant-checked. */
    std::uint64_t transitionsChecked = 0;
    /** Depth at which the frontier emptied (closure), or maxDepth. */
    unsigned depthReached = 0;
    /** True when the search closed before hitting a bound. */
    bool closed = false;
    /** First violation found, if any. */
    std::vector<Violation> violations;
    /** Action trail reproducing violations.front(). */
    std::vector<CheckAction> trail;
    /** Table-driven protocols only: rows in the transition table. */
    std::size_t totalRows = 0;
    /** Per-row fire counts, unioned over every replayed simulation;
     *  empty for hand-written protocols. */
    std::vector<std::uint64_t> rowsFired;
    /** describeRow() of every row the closed search never fired.
     *  Non-empty means dead rows (or a grid cell too small to reach
     *  them) — the coverage tests assert this is empty. */
    std::vector<std::string> unreachableRows;
};

/** Whether the factory scheme supports flushCache (the eject action).
 *  Answered by the scheme itself via Protocol::supportsFlush(). */
bool protocolSupportsFlush(const std::string &name);

/** Exhaustively explore one configuration. */
ExploreResult explore(const ExplorerConfig &cfg);

/** Explore a grid of cells on the shared pool; results are positional
 *  and independent of the thread count. */
std::vector<ExploreResult>
exploreGrid(const std::vector<ExplorerConfig> &grid, unsigned threads = 0);

/** The default verification grid of the tentpole acceptance bar:
 *  every factory protocol (plus the no-Present1 ablation) at
 *  (2 caches x 1 block) and (2 caches x 2 blocks). */
std::vector<ExplorerConfig> defaultExplorerGrid();

} // namespace dir2b

#endif // DIR2B_CHECK_EXPLORER_HH
