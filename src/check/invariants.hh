/**
 * @file
 * Non-aborting structural invariants over a functional protocol.
 *
 * Protocol::checkInvariants() panics on violation, which is right for
 * directed tests but useless for engines that must *report* a failure
 * and keep going (the exhaustive explorer) or hand it to a shrinker
 * (the differential fuzzer).  This module re-states the correctness
 * conditions as predicates that return a Violation instead:
 *
 *  1. value coherence — every valid cached copy of a block holds the
 *     most recently written value (the oracle's shadow); when no
 *     modified copy exists, memory holds it too;
 *  2. single writer — at most one modified copy of a block exists
 *     system-wide;
 *  3. two-bit map consistency — for the schemes keeping the §3.1
 *     global states, the directory entry is consistent with the
 *     actual set of cached copies (Absent: none; Present1: exactly
 *     one, clean; Present*: any number, all clean; PresentM: exactly
 *     one, modified);
 *  4. §4.2 command counts — for the plain two-bit scheme, the
 *     broadcast deliveries and useless commands of one access match
 *     the closed-form case analysis behind T_RM / T_WM / T_WH.
 */

#ifndef DIR2B_CHECK_INVARIANTS_HH
#define DIR2B_CHECK_INVARIANTS_HH

#include <optional>
#include <string>
#include <vector>

#include "check/oracle.hh"
#include "core/global_state.hh"
#include "proto/protocol.hh"
#include "trace/reference.hh"

namespace dir2b
{

/** One detected correctness violation. */
struct Violation
{
    /** Machine-readable class ("stale-copy", "multi-modified",
     *  "map-mismatch", "count-mismatch", "stale-read", ...). */
    std::string kind;
    /** Human-readable diagnostic. */
    std::string detail;
};

/**
 * Check invariants 1-3 over the given blocks.
 * @return the first violation found, or nullopt when the state is
 *         consistent.
 */
std::optional<Violation>
checkProtocolState(const Protocol &proto, const CoherenceOracle &oracle,
                   const std::vector<Addr> &blocks);

/** Directory-vs-copies snapshot taken immediately before an access,
 *  for the §4.2 per-access command-count check. */
struct PreAccess
{
    /** Two-bit global state of the referenced block. */
    GlobalState global = GlobalState::Absent;
    /** The requester held a valid copy. */
    bool hit = false;
    /** ...and that copy was modified. */
    bool dirtyHit = false;
    /** Holders of the block other than the requester. */
    std::size_t otherHolders = 0;
};

/**
 * Whether checkBroadcastDelta() applies to this protocol: the plain
 * two-bit scheme (including the no-Present1 ablation) without a
 * duplicate tag directory.  The translation-buffer variant redirects
 * broadcasts and the §4.2 analysis does not describe it.
 */
bool broadcastDeltaApplies(const Protocol &proto);

/** Snapshot the quantities the count check needs; only meaningful
 *  when broadcastDeltaApplies(proto). */
PreAccess snapshotPreAccess(const Protocol &proto, const MemRef &ref);

/**
 * Verify that the broadcast deliveries and useless commands of the
 * access `ref` (its lastDelta) match the §3.2 case analysis — the
 * per-event form of the closed-form overhead terms:
 *
 *   read miss on PresentM            n-1 deliveries, n-2 useless (T_RM)
 *   write miss on Present1/Present*  n-1 deliveries, n-1-holders useless
 *   write miss on PresentM           n-1 deliveries, n-2 useless (T_WM)
 *   write hit  on Present*           n-1 deliveries, n-1-holders useless
 *                                    (T_WH)
 *   everything else                  no broadcast at all
 */
std::optional<Violation>
checkBroadcastDelta(const Protocol &proto, const PreAccess &pre,
                    const MemRef &ref, const AccessCounts &delta);

} // namespace dir2b

#endif // DIR2B_CHECK_INVARIANTS_HH
