#include "check/check_report.hh"

#include <map>

#include "util/logging.hh"

namespace dir2b
{

Json
exploreCellToJson(const ExplorerConfig &cfg, const ExploreResult &res)
{
    Json c = Json::object();
    c.set("section", "explore");
    c.set("protocol", cfg.protocol);
    c.set("procs", static_cast<unsigned long long>(cfg.numProcs));
    c.set("blocks", static_cast<unsigned long long>(cfg.numBlocks));
    c.set("sets", static_cast<unsigned long long>(cfg.sets));
    c.set("ways", static_cast<unsigned long long>(cfg.ways));
    c.set("states", static_cast<unsigned long long>(res.statesVisited));
    c.set("transitions",
          static_cast<unsigned long long>(res.transitionsChecked));
    c.set("depth", res.depthReached);
    c.set("closed", res.closed);
    c.set("violations",
          static_cast<unsigned long long>(res.violations.size()));
    if (res.totalRows > 0) {
        // Table-driven cells carry row coverage so the committed
        // fixture pins "every row fired" alongside "no violations".
        c.set("total_rows",
              static_cast<unsigned long long>(res.totalRows));
        c.set("unreachable_rows",
              static_cast<unsigned long long>(
                  res.unreachableRows.size()));
        if (!res.unreachableRows.empty()) {
            Json dead = Json::array();
            for (const std::string &r : res.unreachableRows)
                dead.push(r);
            c.set("dead_rows", std::move(dead));
        }
    }
    if (!res.violations.empty()) {
        const Violation &v = res.violations.front();
        Json first = Json::object();
        first.set("kind", v.kind);
        first.set("detail", v.detail);
        Json trail = Json::array();
        for (const CheckAction &a : res.trail)
            trail.push(toString(a));
        first.set("trail", std::move(trail));
        c.set("first_violation", std::move(first));
    }
    return c;
}

Json
fuzzCellToJson(const FuzzConfig &cfg, const FuzzResult &res)
{
    Json c = Json::object();
    c.set("section", "fuzz");
    c.set("procs",
          static_cast<unsigned long long>(cfg.diff.numProcs));
    c.set("base_seed",
          static_cast<unsigned long long>(cfg.baseSeed));
    c.set("seeds", static_cast<unsigned long long>(res.seedsRun));
    c.set("refs_per_seed",
          static_cast<unsigned long long>(cfg.refsPerSeed));
    c.set("refs_replayed",
          static_cast<unsigned long long>(res.refsReplayed));
    c.set("with_timed", cfg.diff.withTimed);
    c.set("failures",
          static_cast<unsigned long long>(res.failures.size()));
    if (!res.failures.empty()) {
        const FuzzFailure &f = res.failures.front();
        Json first = Json::object();
        first.set("seed_index",
                  static_cast<unsigned long long>(f.seedIndex));
        first.set("protocol", f.failure.protocol);
        first.set("kind", f.failure.kind);
        first.set("step",
                  static_cast<unsigned long long>(f.failure.step));
        first.set("detail", f.failure.detail);
        c.set("first_failure", std::move(first));
    }
    return c;
}

Json
makeEngineArtifact(const std::string &tool,
                   const std::vector<ExplorerConfig> &grid,
                   const std::vector<ExploreResult> &explored,
                   const FuzzConfig *fuzzCfg, const FuzzResult *fuzzed)
{
    DIR2B_ASSERT(grid.size() == explored.size(),
                 "explorer grid/result size mismatch");

    Json cells = Json::array();
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t violations = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        states += explored[i].statesVisited;
        transitions += explored[i].transitionsChecked;
        violations += explored[i].violations.size();
        cells.push(exploreCellToJson(grid[i], explored[i]));
    }

    std::uint64_t fuzzFailures = 0;
    if (fuzzCfg && fuzzed) {
        fuzzFailures = fuzzed->failures.size();
        cells.push(fuzzCellToJson(*fuzzCfg, *fuzzed));
    }

    // Row coverage unioned per table protocol: a row only counts as
    // dead if NO cell of the grid fired it (evict rows, for example,
    // need the replacement-pressure cell).
    std::map<std::string, std::vector<std::uint64_t>> coverage;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (explored[i].totalRows == 0)
            continue;
        auto &fired = coverage[grid[i].protocol];
        fired.resize(explored[i].totalRows, 0);
        for (std::size_t r = 0; r < explored[i].totalRows; ++r)
            fired[r] += explored[i].rowsFired[r];
    }
    std::uint64_t deadRows = 0;
    Json tables = Json::object();
    for (const auto &[name, fired] : coverage) {
        std::uint64_t dead = 0;
        for (const std::uint64_t hits : fired)
            if (hits == 0)
                ++dead;
        deadRows += dead;
        Json entry = Json::object();
        entry.set("total_rows",
                  static_cast<unsigned long long>(fired.size()));
        entry.set("unreachable_rows",
                  static_cast<unsigned long long>(dead));
        tables.set(name, std::move(entry));
    }

    Json summary = Json::object();
    summary.set("explore_cells",
                static_cast<unsigned long long>(grid.size()));
    summary.set("states", static_cast<unsigned long long>(states));
    summary.set("transitions",
                static_cast<unsigned long long>(transitions));
    summary.set("explore_violations",
                static_cast<unsigned long long>(violations));
    summary.set("fuzz_failures",
                static_cast<unsigned long long>(fuzzFailures));
    if (!coverage.empty()) {
        summary.set("table_coverage", std::move(tables));
        summary.set("table_dead_rows",
                    static_cast<unsigned long long>(deadRows));
    }
    summary.set("ok", violations == 0 && fuzzFailures == 0 &&
                          deadRows == 0);

    return makeCheckArtifact(tool, Json(), std::move(cells),
                             std::move(summary));
}

} // namespace dir2b
