#include "core/two_bit_wt_protocol.hh"

#include "util/logging.hh"

namespace dir2b
{

TwoBitWtProtocol::TwoBitWtProtocol(const ProtoConfig &cfg)
    : Protocol("two_bit_wt", cfg),
      dirs_(makeTwoBitDirectories(cfg.numModules, cfg.dirRamBudget))
{}

void
TwoBitWtProtocol::broadcastInvalidate(Addr a, ProcId except)
{
    ++counts_.broadcasts;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == except)
            continue;
        ++counts_.broadcastCmds;
        ++counts_.netMessages;
        CacheLine *l = caches_[i].lookup(a, false);
        deliverCmd(i, l != nullptr);
        if (l) {
            caches_[i].invalidate(a);
            ++counts_.invalidations;
        }
    }
}

void
TwoBitWtProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;
    DIR2B_ASSERT(!victim.dirty(),
                 "write-through cache holds a dirty line");
    const Addr olda = victim.addr;
    TwoBitDirectory &dir = dirFor(olda);
    ++counts_.ejects;
    ++counts_.netMessages;
    if (dir.get(olda) == GlobalState::Present1) {
        dir.set(olda, GlobalState::Absent);
        ++counts_.setstates;
    }
    caches_[k].invalidate(olda);
}

Value
TwoBitWtProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];
    TwoBitDirectory &dir = dirFor(a);

    if (!write) {
        if (CacheLine *l = c.lookup(a)) {
            ++counts_.readHits;
            return l->value;
        }
        ++counts_.readMisses;
        replaceVictim(k, a);
        ++counts_.requests;
        ++counts_.netMessages;

        const GlobalState st = dir.get(a);
        DIR2B_ASSERT(st != GlobalState::PresentM,
                     "PresentM under write-through");
        const Value v = mem_.read(a);
        ++counts_.memReads;
        dir.set(a, st == GlobalState::Absent ? GlobalState::Present1
                                             : GlobalState::PresentStar);
        ++counts_.setstates;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, LineState::Shared, v);
        return v;
    }

    // Store: always through to memory; the map filters the broadcast.
    CacheLine *l = c.lookup(a);
    const GlobalState st = dir.get(a);
    DIR2B_ASSERT(st != GlobalState::PresentM,
                 "PresentM under write-through");

    mem_.write(a, wval);
    ++counts_.memWrites;
    ++counts_.wordWrites;
    ++counts_.netMessages;

    if (l) {
        ++counts_.writeHits;
        l->value = wval;
        if (st == GlobalState::PresentStar) {
            // Other copies may exist: invalidate them.  Exactly the
            // writer's copy remains -> the map regains Present1.
            ++counts_.writeHitsClean;
            broadcastInvalidate(a, k);
            dir.set(a, GlobalState::Present1);
            ++counts_.setstates;
        }
        // Present1: the single copy is ours — no broadcast at all,
        // the filtering win over the classical scheme.
        return wval;
    }

    ++counts_.writeMisses;
    if (st != GlobalState::Absent) {
        // Copies may exist elsewhere; after the invalidation none
        // remain (no write-allocate), so the block is exactly Absent.
        broadcastInvalidate(a, k);
        dir.set(a, GlobalState::Absent);
        ++counts_.setstates;
    }
    return wval;
}

void
TwoBitWtProtocol::flushCache(ProcId k)
{
    std::vector<Addr> addrs;
    caches_[k].forEachValid(
        [&](const CacheLine &l) { addrs.push_back(l.addr); });
    for (const Addr a : addrs) {
        TwoBitDirectory &dir = dirFor(a);
        ++counts_.ejects;
        ++counts_.netMessages;
        if (dir.get(a) == GlobalState::Present1) {
            dir.set(a, GlobalState::Absent);
            ++counts_.setstates;
        }
        caches_[k].invalidate(a);
    }
}

void
TwoBitWtProtocol::checkInvariants() const
{
    std::unordered_map<Addr, unsigned> copies;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            DIR2B_ASSERT(!l.dirty(),
                         "dirty line in write-through cache ", p);
            DIR2B_ASSERT(l.value == mem_.peek(l.addr),
                         "stale copy of block ", l.addr, " in cache ",
                         p);
            ++copies[l.addr];
        });
    }
    for (const auto &[a, n] : copies) {
        const GlobalState st = dirFor(a).get(a);
        DIR2B_ASSERT(st != GlobalState::PresentM && st != GlobalState::Absent,
                     n, " copies of block ", a, " but state ",
                     toString(st));
        if (st == GlobalState::Present1)
            DIR2B_ASSERT(n == 1, "Present1 block ", a, " has ", n,
                         " copies");
    }
}

} // namespace dir2b
