/**
 * @file
 * Two-bit directory + translation buffer (the §4.4 enhancement).
 *
 * Identical to TwoBitProtocol except that each memory controller first
 * consults its TranslationBuffer before broadcasting: a hit yields the
 * exact holder set and the commands go out *directed*, "just as with
 * the n+1 bit approach"; a miss falls back to the broadcast, after
 * which the controller re-learns the holder set and installs it.
 *
 * The paper's claim under test (bench_enhancements / E4): with a
 * translation-buffer hit ratio of H, a fraction H of the broadcast
 * overhead is eliminated, so the scheme "can achieve any desired
 * approximation of the full bit map approach".
 */

#ifndef DIR2B_CORE_TWO_BIT_TB_PROTOCOL_HH
#define DIR2B_CORE_TWO_BIT_TB_PROTOCOL_HH

#include <vector>

#include "core/translation_buffer.hh"
#include "core/two_bit_protocol.hh"

namespace dir2b
{

/** Two-bit scheme with per-module owner-identity caches. */
class TwoBitTbProtocol : public TwoBitProtocol
{
  public:
    explicit TwoBitTbProtocol(const ProtoConfig &cfg);

    /** Aggregated hit ratio over all module buffers. */
    double tbHitRatio() const;

    const TranslationBuffer &buffer(ModuleId m) const
    {
        return tbs_.at(m);
    }

    void checkInvariants() const override;

  protected:
    void sendRemoteInvalidate(Addr a, ProcId except) override;
    Value sendRemoteQuery(Addr a, ProcId requester, RW rw) override;

    void noteFill(ProcId k, Addr a, GlobalState before,
                  bool write) override;
    void noteUpgrade(ProcId k, Addr a) override;
    void noteEject(ProcId k, Addr a, bool toAbsent) override;

  private:
    TranslationBuffer &tbFor(Addr a) { return tbs_[addrMap_.home(a)]; }
    const TranslationBuffer &
    tbFor(Addr a) const
    {
        return tbs_[addrMap_.home(a)];
    }

    std::vector<TranslationBuffer> tbs_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_TB_PROTOCOL_HH
