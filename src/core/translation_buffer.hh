/**
 * @file
 * Translation buffer: the paper's second enhancement (§4.4).
 *
 * "...adding to each memory controller a translation buffer or cache
 * memory in which to store the identities of caches which own copies
 * of blocks from that module.  In those cases where a broadcast is
 * needed in the unmodified two-bit scheme, the controller would first
 * determine if the identity of the owner (or owners) is present in the
 * translation buffer.  If so, selective message handling can be
 * performed just as with the n+1 bit approach; if not, a broadcast
 * must be used..."
 *
 * An entry is a full holder set for one block and is only usable while
 * *exact*.  Exactness is achievable because the home controller
 * observes every REQUEST, MREQUEST and EJECT for its blocks: an entry
 * installed at a moment when the holder set is unambiguous (transition
 * out of Absent, or any write, which leaves exactly the writer) can be
 * kept exact by tracking those commands — until LRU capacity eviction
 * discards it, after which the block needs a broadcast again to
 * re-learn the set.
 */

#ifndef DIR2B_CORE_TRANSLATION_BUFFER_HH
#define DIR2B_CORE_TRANSLATION_BUFFER_HH

#include <cstddef>
#include <list>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace dir2b
{

/** LRU owner-identity cache attached to one memory controller. */
class TranslationBuffer
{
  public:
    /** @param capacity entries (0 disables the buffer entirely). */
    explicit TranslationBuffer(std::size_t capacity)
        : capacity_(capacity)
    {}

    /**
     * Consult the buffer before a would-be broadcast.
     * @return the exact holder set on a hit, nullopt on a miss.
     */
    std::optional<std::vector<ProcId>>
    lookup(Addr a)
    {
        if (auto it = map_.find(a); it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            return it->second->holders;
        }
        ++misses_;
        return std::nullopt;
    }

    /** Install an exact holder set (transition out of Absent, or any
     *  write leaving exactly one holder). */
    void
    installExact(Addr a, std::vector<ProcId> holders)
    {
        if (capacity_ == 0)
            return;
        if (auto it = map_.find(a); it != map_.end()) {
            it->second->holders = std::move(holders);
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        lru_.push_front(EntryNode{a, std::move(holders)});
        map_[a] = lru_.begin();
        if (map_.size() > capacity_) {
            map_.erase(lru_.back().addr);
            lru_.pop_back();
        }
    }

    /** The controller observed cache k loading block a. */
    void
    addHolder(Addr a, ProcId k)
    {
        if (auto it = map_.find(a); it != map_.end()) {
            auto &h = it->second->holders;
            for (ProcId p : h) {
                if (p == k)
                    return;
            }
            h.push_back(k);
        }
    }

    /** The controller observed cache k ejecting block a. */
    void
    removeHolder(Addr a, ProcId k)
    {
        if (auto it = map_.find(a); it != map_.end()) {
            auto &h = it->second->holders;
            std::erase(h, k);
        }
    }

    /** Forget block a (e.g. it returned to Absent). */
    void
    drop(Addr a)
    {
        if (auto it = map_.find(a); it != map_.end()) {
            lru_.erase(it->second);
            map_.erase(it);
        }
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Measured hit ratio of the buffer (the paper's 90% knob). */
    double
    hitRatio() const
    {
        const auto total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

  private:
    struct EntryNode
    {
        Addr addr;
        std::vector<ProcId> holders;
    };

    std::size_t capacity_;
    std::list<EntryNode> lru_;
    FlatMap<Addr, std::list<EntryNode>::iterator> map_;
    Counter hits_;
    Counter misses_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TRANSLATION_BUFFER_HH
