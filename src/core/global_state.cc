#include "core/global_state.hh"

#include "util/logging.hh"

namespace dir2b
{

std::string
toString(GlobalState s)
{
    switch (s) {
      case GlobalState::Absent:
        return "Absent";
      case GlobalState::Present1:
        return "Present1";
      case GlobalState::PresentStar:
        return "Present*";
      case GlobalState::PresentM:
        return "PresentM";
    }
    DIR2B_PANIC("unknown GlobalState ", static_cast<int>(s));
}

} // namespace dir2b
