/**
 * @file
 * The paper's contribution: the two-bit directory scheme (§3).
 *
 * Each memory module's controller keeps two bits of global state per
 * block (Absent / Present1 / Present* / PresentM) and no owner
 * identities.  Whenever a command must reach a cache that did not
 * initiate the transaction, it is *broadcast* to all caches
 * (BROADINV / BROADQUERY); caches without a copy do a useless
 * directory check.  The protocols implemented here follow §3.2
 * case-by-case:
 *
 *  Replacement (§3.2.1)
 *    - invalid victim: nothing;
 *    - valid clean victim: EJECT(k,olda,"read"); Present1 -> Absent,
 *      Present* unchanged (the map cannot count down);
 *    - valid modified victim: EJECT(k,olda,"write") + put(data);
 *      write-back; SETSTATE(olda, Absent).
 *
 *  Read miss (§3.2.2)
 *    - Absent: get; SETSTATE Present1;
 *    - Present1 / Present*: get; SETSTATE Present*;
 *    - PresentM: BROADQUERY(a,"read"); the owner puts the block and
 *      clears its modified bit (keeping a clean copy); the controller
 *      writes memory back, forwards the data, SETSTATE Present*
 *      (two clean copies now exist; see DESIGN.md on the OCR artefact
 *      in the paper's text here).
 *
 *  Write miss (§3.2.3)
 *    - Absent: get; SETSTATE PresentM;
 *    - Present1 / Present*: BROADINV(a,k); get; SETSTATE PresentM;
 *    - PresentM: BROADQUERY(a,"write"); the owner puts the block and
 *      invalidates; write-back; get; SETSTATE PresentM.
 *
 *  Write hit on clean block (§3.2.4)
 *    - Present1: MGRANTED(k,true) with no broadcast (the payoff for
 *      keeping Present1 distinct);
 *    - Present*: BROADINV(a,k) then grant.
 *
 * Broadcast overhead accounting matches §4.2 exactly: every broadcast
 * reaches the n-1 caches other than the requester, and each delivery
 * that finds no copy counts as a useless (extra) command.
 */

#ifndef DIR2B_CORE_TWO_BIT_PROTOCOL_HH
#define DIR2B_CORE_TWO_BIT_PROTOCOL_HH

#include <vector>

#include "cache/snoop_filter.hh"
#include "core/two_bit_directory.hh"
#include "net/message.hh"
#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier implementation of the two-bit directory scheme. */
class TwoBitProtocol : public Protocol
{
  public:
    explicit TwoBitProtocol(const ProtoConfig &cfg);

    /** Named variant (used for the "two_bit_nop1" ablation and by the
     *  translation-buffer subclass). */
    TwoBitProtocol(const std::string &name, const ProtoConfig &cfg);

    unsigned
    directoryBitsPerBlock() const override
    {
        return TwoBitDirectory::bitsPerBlock();
    }

    void checkInvariants() const override;

    /** §2.2 context-switch flush: dirty lines EJECT(write), clean
     *  lines EJECT(read) (reclaiming Present1 blocks). */
    void flushCache(ProcId p) override;
    bool supportsFlush() const override { return true; }

    /** Global state of block a as the directory believes it. */
    GlobalState globalState(Addr a) const { return dirFor(a).get(a); }

    /** Directory of module m (for storage-cost reporting). */
    const TwoBitDirectory &directory(ModuleId m) const
    {
        return dirs_.at(m);
    }

    DirStoreCounters
    dirStoreCounters() const override
    {
        DirStoreCounters c;
        for (const TwoBitDirectory &d : dirs_)
            c.add(d);
        return c;
    }

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

    /** Hook for the translation-buffer subclass: called instead of a
     *  raw broadcast; the default broadcasts to all n-1 caches. */
    virtual void sendRemoteInvalidate(Addr a, ProcId except);
    virtual Value sendRemoteQuery(Addr a, ProcId requester, RW rw);

    /**
     * Observation hooks: the home controller sees every REQUEST,
     * MREQUEST and EJECT for its blocks, which is what lets the
     * translation-buffer variant keep exact holder sets.  The base
     * scheme ignores them.
     */
    /** Cache k filled block a; 'before' is the prior global state and
     *  'write' distinguishes write-miss fills (sole holder after). */
    virtual void noteFill(ProcId, Addr, GlobalState, bool) {}
    /** Cache k was granted modification of a (sole holder after). */
    virtual void noteUpgrade(ProcId, Addr) {}
    /** Cache k ejected block a; toAbsent is true when the directory
     *  reclaimed the block. */
    virtual void noteEject(ProcId, Addr, bool) {}

    TwoBitDirectory &dirFor(Addr a) { return dirs_[addrMap_.home(a)]; }
    const TwoBitDirectory &
    dirFor(Addr a) const
    {
        return dirs_[addrMap_.home(a)];
    }

    /** BROADINV(a,except): deliveries, invalidations, accounting. */
    void broadcastInvalidate(Addr a, ProcId except);

    /**
     * BROADQUERY(a,rw): deliveries to the n-1 caches other than the
     * requester; the owner responds with its dirty data, which is
     * written back; rw selects downgrade (read) vs invalidate (write).
     * @return the owner's data.
     */
    Value broadcastQuery(Addr a, ProcId requester, RW rw);

    /** §3.2.1 replacement of the victim frame block a would use. */
    void replaceVictim(ProcId k, Addr a);

    /** Fill cache k with block a, keeping the duplicate tag directory
     *  (snoop filter) of §4.4 enhancement (a) in sync. */
    void fillLine(ProcId k, Addr a, LineState st, Value v);

    /** Invalidate block a in cache k, keeping the duplicate tag
     *  directory in sync.  @return true if a copy was dropped. */
    bool dropLine(ProcId k, Addr a);

    /** Whether a broadcast delivery at cache i costs a cycle: with the
     *  duplicate directory enabled, only checks that find the block
     *  forward to the cache proper. */
    bool snoopSteals(ProcId i, Addr a);

    /** Duplicate-directory mirrors (empty when disabled). */
    const std::vector<SnoopFilter> &snoopFilters() const
    {
        return snoops_;
    }

  private:
    std::vector<TwoBitDirectory> dirs_;
    std::vector<SnoopFilter> snoops_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_PROTOCOL_HH
