#include "core/two_bit_protocol.hh"

#include "util/logging.hh"

namespace dir2b
{

TwoBitProtocol::TwoBitProtocol(const ProtoConfig &cfg)
    : TwoBitProtocol("two_bit", cfg)
{}

TwoBitProtocol::TwoBitProtocol(const std::string &name,
                               const ProtoConfig &cfg)
    : Protocol(name, cfg),
      dirs_(makeTwoBitDirectories(cfg.numModules, cfg.dirRamBudget))
{
    if (cfg.snoopFilter)
        snoops_.resize(cfg.numProcs);
}

void
TwoBitProtocol::fillLine(ProcId k, Addr a, LineState st, Value v)
{
    caches_[k].fill(a, st, v);
    if (!snoops_.empty())
        snoops_[k].insert(a);
}

bool
TwoBitProtocol::dropLine(ProcId k, Addr a)
{
    const bool had = caches_[k].invalidate(a);
    if (had && !snoops_.empty())
        snoops_[k].erase(a);
    return had;
}

bool
TwoBitProtocol::snoopSteals(ProcId i, Addr a)
{
    if (snoops_.empty())
        return true;
    return snoops_[i].check(a);
}

void
TwoBitProtocol::broadcastInvalidate(Addr a, ProcId except)
{
    ++counts_.broadcasts;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == except)
            continue;
        ++counts_.broadcastCmds;
        ++counts_.netMessages;
        CacheLine *l = caches_[i].lookup(a, false);
        deliverCmd(i, l != nullptr, snoopSteals(i, a));
        if (l) {
            DIR2B_ASSERT(!l->dirty(),
                         "BROADINV found a dirty copy of ", a,
                         " in cache ", i,
                         " while the directory said clean");
            dropLine(i, a);
            ++counts_.invalidations;
        }
    }
}

Value
TwoBitProtocol::broadcastQuery(Addr a, ProcId requester, RW rw)
{
    ++counts_.broadcasts;
    bool found = false;
    Value data = 0;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == requester)
            continue;
        ++counts_.broadcastCmds;
        ++counts_.netMessages;
        CacheLine *l = caches_[i].lookup(a, false);
        const bool owner = l && l->dirty();
        deliverCmd(i, owner, snoopSteals(i, a));
        if (!owner)
            continue;
        DIR2B_ASSERT(!found, "two owners of PresentM block ", a);
        found = true;
        data = l->value;
        ++counts_.purges;
        // put(b_i, a) back to the controller...
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        // ...which writes memory back (both for read and write misses;
        // §3.2.2 case 2 and §3.2.3 case 3).
        mem_.write(a, data);
        ++counts_.memWrites;
        ++counts_.writebacks;
        if (rw == RW::Read) {
            // Owner resets its modified bit and keeps a clean copy.
            l->state = LineState::Shared;
        } else {
            // Owner resets its valid bit.
            dropLine(i, a);
            ++counts_.invalidations;
        }
    }
    DIR2B_ASSERT(found, "BROADQUERY(", a,
                 ") found no owner: directory/cache disagreement");
    return data;
}

void
TwoBitProtocol::sendRemoteInvalidate(Addr a, ProcId except)
{
    broadcastInvalidate(a, except);
}

Value
TwoBitProtocol::sendRemoteQuery(Addr a, ProcId requester, RW rw)
{
    return broadcastQuery(a, requester, rw);
}

void
TwoBitProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;

    const Addr olda = victim.addr;
    TwoBitDirectory &dir = dirFor(olda);
    ++counts_.ejects;
    ++counts_.netMessages;

    bool toAbsent = false;
    if (victim.dirty()) {
        // EJECT(k, olda, "write") followed by put(b_k, olda).
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        mem_.write(olda, victim.value);
        ++counts_.memWrites;
        ++counts_.writebacks;
        DIR2B_ASSERT(dir.get(olda) == GlobalState::PresentM,
                     "dirty eject of ", olda, " but directory says ",
                     toString(dir.get(olda)));
        dir.set(olda, GlobalState::Absent);
        ++counts_.setstates;
        toAbsent = true;
    } else {
        // EJECT(k, olda, "read"): only Present1 can be reclaimed.
        const GlobalState st = dir.get(olda);
        if (st == GlobalState::Present1) {
            dir.set(olda, GlobalState::Absent);
            ++counts_.setstates;
            toAbsent = true;
        } else {
            DIR2B_ASSERT(st == GlobalState::PresentStar,
                         "clean eject of ", olda,
                         " but directory says ", toString(st));
        }
    }
    dropLine(k, olda);
    noteEject(k, olda, toAbsent);
}

void
TwoBitProtocol::flushCache(ProcId k)
{
    // Collect first: dropLine mutates the array under iteration.
    std::vector<CacheLine> lines;
    caches_[k].forEachValid(
        [&](const CacheLine &l) { lines.push_back(l); });

    for (const CacheLine &l : lines) {
        TwoBitDirectory &dir = dirFor(l.addr);
        ++counts_.ejects;
        ++counts_.netMessages;
        bool toAbsent = false;
        if (l.dirty()) {
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            mem_.write(l.addr, l.value);
            ++counts_.memWrites;
            ++counts_.writebacks;
            dir.set(l.addr, GlobalState::Absent);
            ++counts_.setstates;
            toAbsent = true;
        } else if (dir.get(l.addr) == GlobalState::Present1) {
            dir.set(l.addr, GlobalState::Absent);
            ++counts_.setstates;
            toAbsent = true;
        }
        dropLine(k, l.addr);
        noteEject(k, l.addr, toAbsent);
    }
}

Value
TwoBitProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];
    TwoBitDirectory &dir = dirFor(a);

    if (CacheLine *l = c.lookup(a)) {
        if (!write) {
            ++counts_.readHits;
            return l->value;
        }
        if (l->dirty()) {
            // Write hit on an already-modified block: purely local.
            ++counts_.writeHits;
            l->value = wval;
            return wval;
        }

        // §3.2.4: write hit on a previously unmodified block.
        ++counts_.writeHits;
        ++counts_.writeHitsClean;
        ++counts_.mrequests;
        counts_.netMessages += 2; // MREQUEST + MGRANTED
        const GlobalState st = dir.get(a);
        switch (st) {
          case GlobalState::Present1:
            // MGRANTED(k, true) with no broadcast.
            break;
          case GlobalState::PresentStar:
            sendRemoteInvalidate(a, k);
            break;
          default:
            DIR2B_PANIC("MREQUEST(", k, ",", a, ") with global state ",
                        toString(st));
        }
        dir.set(a, GlobalState::PresentM);
        ++counts_.setstates;
        l->state = LineState::Modified;
        l->value = wval;
        noteUpgrade(k, a);
        return wval;
    }

    // Miss: replacement first (§3.2.1), then REQUEST (§3.2.2/3.2.3).
    if (write)
        ++counts_.writeMisses;
    else
        ++counts_.readMisses;
    replaceVictim(k, a);
    ++counts_.requests;
    ++counts_.netMessages;

    const GlobalState st = dir.get(a);
    Value v = 0;

    if (!write) {
        // §3.2.2 read miss.
        switch (st) {
          case GlobalState::Absent:
            v = mem_.read(a);
            ++counts_.memReads;
            // The noPresent1 ablation folds Present1 into Present*.
            dir.set(a, cfg_.noPresent1 ? GlobalState::PresentStar
                                       : GlobalState::Present1);
            break;
          case GlobalState::Present1:
          case GlobalState::PresentStar:
            v = mem_.read(a);
            ++counts_.memReads;
            dir.set(a, GlobalState::PresentStar);
            break;
          case GlobalState::PresentM:
            v = sendRemoteQuery(a, k, RW::Read);
            dir.set(a, GlobalState::PresentStar);
            break;
        }
        ++counts_.setstates;
        // get(k, a)
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        fillLine(k, a, LineState::Shared, v);
        noteFill(k, a, st, false);
        return v;
    }

    // §3.2.3 write miss.
    switch (st) {
      case GlobalState::Absent:
        v = mem_.read(a);
        ++counts_.memReads;
        break;
      case GlobalState::Present1:
      case GlobalState::PresentStar:
        sendRemoteInvalidate(a, k);
        v = mem_.read(a);
        ++counts_.memReads;
        break;
      case GlobalState::PresentM:
        v = sendRemoteQuery(a, k, RW::Write);
        break;
    }
    dir.set(a, GlobalState::PresentM);
    ++counts_.setstates;
    // get(k, a)
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    fillLine(k, a, LineState::Modified, wval);
    noteFill(k, a, st, true);
    return wval;
}

void
TwoBitProtocol::checkInvariants() const
{
    // For every block resident in some cache, the directory state must
    // be consistent with the holder set and dirtiness.
    std::unordered_map<Addr, std::pair<unsigned, unsigned>> seen;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto &[copies, dirty] = seen[l.addr];
            ++copies;
            if (l.dirty())
                ++dirty;
        });
    }
    for (const auto &[a, cd] : seen) {
        const auto [copies, dirty] = cd;
        const GlobalState st = dirFor(a).get(a);
        DIR2B_ASSERT(dirty <= 1, "block ", a, " dirty in ", dirty,
                     " caches");
        if (dirty == 1) {
            DIR2B_ASSERT(copies == 1 && st == GlobalState::PresentM,
                         "dirty block ", a, " has ", copies,
                         " copies and state ", toString(st));
        } else if (copies == 1) {
            DIR2B_ASSERT(st == GlobalState::Present1 ||
                             st == GlobalState::PresentStar,
                         "single clean copy of ", a, " but state ",
                         toString(st));
        } else {
            DIR2B_ASSERT(st == GlobalState::PresentStar, copies,
                         " clean copies of ", a, " but state ",
                         toString(st));
        }
    }
}

} // namespace dir2b
