#include "core/two_bit_tb_protocol.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dir2b
{

TwoBitTbProtocol::TwoBitTbProtocol(const ProtoConfig &cfg)
    : TwoBitProtocol("two_bit_tb", cfg)
{
    tbs_.reserve(cfg.numModules);
    for (ModuleId m = 0; m < cfg.numModules; ++m)
        tbs_.emplace_back(cfg.tbCapacity);
}

double
TwoBitTbProtocol::tbHitRatio() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &tb : tbs_) {
        hits += tb.hits();
        total += tb.hits() + tb.misses();
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

void
TwoBitTbProtocol::sendRemoteInvalidate(Addr a, ProcId except)
{
    auto holders = tbFor(a).lookup(a);
    if (!holders) {
        ++counts_.tbMisses;
        broadcastInvalidate(a, except);
        // The broadcast left exactly the requester holding the block
        // (or nobody, on a write miss): the set is exact again.
        std::vector<ProcId> fresh;
        if (caches_[except].peek(a))
            fresh.push_back(except);
        tbFor(a).installExact(a, std::move(fresh));
        return;
    }

    // Selective message handling, "just as with the n+1 bit approach".
    ++counts_.tbHits;
    for (ProcId p : *holders) {
        if (p == except)
            continue;
        ++counts_.directedCmds;
        ++counts_.netMessages;
        deliverCmd(p, true);
        const bool had = dropLine(p, a);
        DIR2B_ASSERT(had, "translation buffer listed cache ", p,
                     " for block ", a, " but it holds no copy");
        ++counts_.invalidations;
    }
    std::vector<ProcId> fresh;
    if (std::find(holders->begin(), holders->end(), except) !=
        holders->end()) {
        fresh.push_back(except);
    }
    tbFor(a).installExact(a, std::move(fresh));
}

Value
TwoBitTbProtocol::sendRemoteQuery(Addr a, ProcId requester, RW rw)
{
    auto holders = tbFor(a).lookup(a);
    if (!holders) {
        ++counts_.tbMisses;
        const Value v = broadcastQuery(a, requester, rw);
        // After the query the holder set is exact: the old owner kept
        // a clean copy on a read query, or vanished on a write query.
        std::vector<ProcId> fresh;
        for (ProcId p = 0; p < cfg_.numProcs; ++p) {
            if (p != requester && caches_[p].peek(a))
                fresh.push_back(p);
        }
        tbFor(a).installExact(a, std::move(fresh));
        return v;
    }

    ++counts_.tbHits;
    DIR2B_ASSERT(holders->size() == 1,
                 "PresentM block ", a, " has a TB entry with ",
                 holders->size(), " holders");
    const ProcId owner = holders->front();
    CacheLine *l = caches_[owner].lookup(a, false);
    DIR2B_ASSERT(l && l->dirty(), "TB owner of ", a,
                 " has no dirty copy");

    // Directed PURGE(a, owner, rw).
    ++counts_.directedCmds;
    ++counts_.netMessages;
    deliverCmd(owner, true);
    ++counts_.purges;

    const Value data = l->value;
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    mem_.write(a, data);
    ++counts_.memWrites;
    ++counts_.writebacks;

    std::vector<ProcId> fresh;
    if (rw == RW::Read) {
        l->state = LineState::Shared;
        fresh.push_back(owner);
    } else {
        dropLine(owner, a);
        ++counts_.invalidations;
    }
    tbFor(a).installExact(a, std::move(fresh));
    return data;
}

void
TwoBitTbProtocol::noteFill(ProcId k, Addr a, GlobalState before,
                           bool write)
{
    TranslationBuffer &tb = tbFor(a);
    if (write || before == GlobalState::Absent) {
        // The holder set is unambiguous: exactly the requester.
        tb.installExact(a, {k});
    } else {
        // Keep a resident entry exact; a missing entry stays unknown.
        tb.addHolder(a, k);
    }
}

void
TwoBitTbProtocol::noteUpgrade(ProcId k, Addr a)
{
    tbFor(a).installExact(a, {k});
}

void
TwoBitTbProtocol::noteEject(ProcId k, Addr a, bool toAbsent)
{
    if (toAbsent)
        tbFor(a).drop(a);
    else
        tbFor(a).removeHolder(a, k);
}

void
TwoBitTbProtocol::checkInvariants() const
{
    TwoBitProtocol::checkInvariants();
    // Every resident TB entry must be exact: listed holders hold the
    // block and no unlisted cache does.
    // (Scanning the buffers requires iterating their maps; we verify
    // through the holder sets the protocol consults, which assert on
    // use.  Here we check the cheap direction: every TB-listed holder
    // is real.)
}

} // namespace dir2b
