/**
 * @file
 * Write-through variant of the two-bit directory scheme.
 *
 * §2.4: "Although the schemes can be implemented for both
 * write-through and write-back, we assume a write-back policy for the
 * discussion that follows."  This is the other branch of that choice,
 * and it realises §2.4's framing of directories as *filters* in its
 * purest form: the scheme is exactly the classical broadcast solution
 * (§2.3) with the two-bit map deciding whether the invalidation
 * broadcast is necessary at all.
 *
 * With write-through, memory is always current, so the PresentM state
 * can never arise; the map uses only Absent / Present1 / Present*:
 *
 *  - read miss: fill from memory; Absent -> Present1, else Present*;
 *  - write hit: word written through to memory; if Present* (other copies
 *    may exist) broadcast BROADINV, and the state returns to Present1
 *    (exactly the writer's copy remains); Present1 needs NO broadcast
 *    — this is the filtering win over the classical scheme, which
 *    broadcasts on every single store;
 *  - write miss (no allocate): write memory; broadcast only if the
 *    state says copies may exist; Present1/Present* -> Absent after
 *    the invalidation (no copy remains, since we do not allocate);
 *  - clean eviction: EJECT(read) as in the write-back scheme
 *    (Present1 -> Absent); there are never dirty evictions.
 */

#ifndef DIR2B_CORE_TWO_BIT_WT_PROTOCOL_HH
#define DIR2B_CORE_TWO_BIT_WT_PROTOCOL_HH

#include <vector>

#include "core/two_bit_directory.hh"
#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier write-through two-bit directory protocol. */
class TwoBitWtProtocol : public Protocol
{
  public:
    explicit TwoBitWtProtocol(const ProtoConfig &cfg);

    unsigned
    directoryBitsPerBlock() const override
    {
        return TwoBitDirectory::bitsPerBlock();
    }

    void checkInvariants() const override;
    void flushCache(ProcId p) override;
    bool supportsFlush() const override { return true; }

    GlobalState globalState(Addr a) const { return dirFor(a).get(a); }

    DirStoreCounters
    dirStoreCounters() const override
    {
        DirStoreCounters c;
        for (const TwoBitDirectory &d : dirs_)
            c.add(d);
        return c;
    }

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    TwoBitDirectory &dirFor(Addr a) { return dirs_[addrMap_.home(a)]; }
    const TwoBitDirectory &
    dirFor(Addr a) const
    {
        return dirs_[addrMap_.home(a)];
    }

    /** BROADINV(a, except) with §4.2-style useless accounting. */
    void broadcastInvalidate(Addr a, ProcId except);

    /** Clean eviction bookkeeping (there are no dirty lines). */
    void replaceVictim(ProcId k, Addr a);

    std::vector<TwoBitDirectory> dirs_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_WT_PROTOCOL_HH
