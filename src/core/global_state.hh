/**
 * @file
 * The four global block states of the two-bit directory scheme (§3.1).
 *
 * Exactly four states means two bits per block — the paper's central
 * economy argument against the (n+1)-bit full map:
 *
 *   Absent       not present in any cache;
 *   Present1     present in exactly one cache, read-only;
 *   Present*     present in ZERO or more caches, read-only (the count
 *                is unknown because clean ejections from a Present*
 *                block cannot be decremented — "this apparent anomaly",
 *                §3.1 footnote 2);
 *   PresentM     present in exactly one cache and modified there.
 *
 * Present1 is subsumed by Present* but is kept because (a) an EJECT
 * from Present1 can restore Absent, and (b) an MREQUEST against
 * Present1 can be granted without any broadcast (§3.2.4 case 1) —
 * both reduce the number of broadcasts.
 */

#ifndef DIR2B_CORE_GLOBAL_STATE_HH
#define DIR2B_CORE_GLOBAL_STATE_HH

#include <cstdint>
#include <string>

namespace dir2b
{

/** Two-bit global state of a memory block. */
enum class GlobalState : std::uint8_t
{
    Absent = 0,
    Present1 = 1,
    PresentStar = 2,
    PresentM = 3,
};

/** Paper spelling of a global state. */
std::string toString(GlobalState s);

/** True if the state admits cached read-only copies. */
constexpr bool
isPresentClean(GlobalState s)
{
    return s == GlobalState::Present1 || s == GlobalState::PresentStar;
}

} // namespace dir2b

#endif // DIR2B_CORE_GLOBAL_STATE_HH
