/**
 * @file
 * The two-bit-per-block directory storage itself.
 *
 * This is the data structure whose economy the paper is named for: a
 * packed array holding exactly two bits of global state per memory
 * block, independent of the number of processors.  For comparison, the
 * full map needs n+1 bits per block (~15% of memory for 16 processors
 * and 16-byte blocks, §2.4.2); this map needs 2 bits per block
 * regardless of n (~0.8% for the same geometry).
 *
 * The words are held in a PagedArray so that sparse reference streams
 * do not materialise state for untouched regions — a lookup is a page
 * probe (cached for the repeated-touch common case) plus a shift/mask,
 * which matches the paper's framing of the directory as plain indexed
 * storage.  bitsPerBlock() still exposes the true hardware cost.
 */

#ifndef DIR2B_CORE_TWO_BIT_DIRECTORY_HH
#define DIR2B_CORE_TWO_BIT_DIRECTORY_HH

#include <cstdint>

#include "core/global_state.hh"
#include "sim/stats.hh"
#include "util/paged_array.hh"
#include "util/types.hh"

namespace dir2b
{

/** Packed 2-bit/block global-state map (one per memory module). */
class TwoBitDirectory
{
  public:
    /** Global state of block a (Absent until first touched). */
    GlobalState
    get(Addr a) const
    {
        // Untouched words read as zero, which is Absent by
        // construction (GlobalState::Absent == 0).
        const std::uint64_t word = words_.get(a / blocksPerWord);
        return static_cast<GlobalState>((word >> bitOffset(a)) & 0x3);
    }

    /** The paper's SETSTATE(a, st). */
    void
    set(Addr a, GlobalState st)
    {
        ++setstates_;
        std::uint64_t &word = words_.ref(a / blocksPerWord);
        word &= ~(0x3ULL << bitOffset(a));
        word |= static_cast<std::uint64_t>(st) << bitOffset(a);
    }

    /** Number of SETSTATE operations performed. */
    std::uint64_t setstateCount() const { return setstates_.value(); }

    /** Hardware cost of this scheme, per block, in bits. */
    static constexpr unsigned bitsPerBlock() { return 2; }

    /** Bits of directory storage currently materialised. */
    std::uint64_t
    materialisedBits() const
    {
        return words_.pageCount() * blocksPerPage * bitsPerBlock();
    }

  private:
    /** One 64-bit word packs 32 blocks at two bits each. */
    static constexpr std::uint64_t blocksPerWord = 32;
    // 128 words (1 KiB of directory, 4096 blocks) per page — the same
    // materialisation granularity as the previous chunked map.
    static constexpr unsigned pageBits = 7;
    static constexpr std::uint64_t blocksPerPage =
        (std::uint64_t{1} << pageBits) * blocksPerWord;

    static unsigned
    bitOffset(Addr a)
    {
        return static_cast<unsigned>((a % blocksPerWord) * 2);
    }

    PagedArray<std::uint64_t, pageBits> words_;
    Counter setstates_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_DIRECTORY_HH
