/**
 * @file
 * The two-bit-per-block directory storage itself.
 *
 * This is the data structure whose economy the paper is named for: a
 * packed array holding exactly two bits of global state per memory
 * block, independent of the number of processors.  For comparison, the
 * full map needs n+1 bits per block (~15% of memory for 16 processors
 * and 16-byte blocks, §2.4.2); this map needs 2 bits per block
 * regardless of n (~0.8% for the same geometry).
 *
 * The words are held in a TieredStore so that sparse reference streams
 * do not materialise state for untouched regions, and so that address
 * spaces far larger than RAM still fit: under a RAM budget, cold pages
 * are run-length compressed in place (directory pages are almost
 * always homogeneous Absent or Present1) and the coldest spill to an
 * anonymous disk segment.  With the default unlimited budget the store
 * behaves exactly like the previous PagedArray — a cached page probe
 * plus a shift/mask — and either way the get/set semantics are
 * bit-identical, so every protocol, the model checker and the timed
 * tier are oblivious to the tiering.  bitsPerBlock() still exposes the
 * true hardware cost.
 */

#ifndef DIR2B_CORE_TWO_BIT_DIRECTORY_HH
#define DIR2B_CORE_TWO_BIT_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "core/global_state.hh"
#include "sim/stats.hh"
#include "util/tiered_store.hh"
#include "util/types.hh"

namespace dir2b
{

/** Packed 2-bit/block global-state map (one per memory module). */
class TwoBitDirectory
{
  public:
    /** ramBudgetBytes caps resident directory storage for this module
     *  (hot raw + cold compressed pages); 0 = unlimited, no tiering. */
    explicit TwoBitDirectory(std::uint64_t ramBudgetBytes = 0)
        : words_(ramBudgetBytes)
    {}

    /** Global state of block a (Absent until first touched). */
    GlobalState
    get(Addr a) const
    {
        // Untouched words read as zero, which is Absent by
        // construction (GlobalState::Absent == 0).
        const std::uint64_t word = words_.get(a / blocksPerWord);
        return static_cast<GlobalState>((word >> bitOffset(a)) & 0x3);
    }

    /** The paper's SETSTATE(a, st). */
    void
    set(Addr a, GlobalState st)
    {
        ++setstates_;
        std::uint64_t &word = words_.ref(a / blocksPerWord);
        word &= ~(0x3ULL << bitOffset(a));
        word |= static_cast<std::uint64_t>(st) << bitOffset(a);
    }

    /** Number of SETSTATE operations performed. */
    std::uint64_t setstateCount() const { return setstates_.value(); }

    /** Hardware cost of this scheme, per block, in bits. */
    static constexpr unsigned bitsPerBlock() { return 2; }

    /** Bits of directory storage currently materialised. */
    std::uint64_t
    materialisedBits() const
    {
        return words_.pageCount() * blocksPerPage * bitsPerBlock();
    }

    /** Bytes of directory state resident in RAM right now. */
    std::uint64_t residentBytes() const { return words_.residentBytes(); }

    /** Bytes of compressed (cold, in-RAM) directory state. */
    std::uint64_t compressedBytes() const { return words_.compressedBytes(); }

    /** Bytes appended to the on-disk spill segment. */
    std::uint64_t segmentBytes() const { return words_.segmentBytes(); }

    /** Pages per tier (hot raw / cold compressed / on disk). */
    std::uint64_t hotPages() const { return words_.hotPages(); }
    std::uint64_t coldPages() const { return words_.coldPages(); }
    std::uint64_t diskPages() const { return words_.diskPages(); }

    /** The configured per-module RAM budget (0 = unlimited). */
    std::uint64_t ramBudgetBytes() const { return words_.budgetBytes(); }

    /** Tier-movement counters of the backing store. */
    const TieredStoreStats &storeStats() const { return words_.stats(); }

  private:
    /** One 64-bit word packs 32 blocks at two bits each. */
    static constexpr std::uint64_t blocksPerWord = 32;
    // 128 words (1 KiB of directory, 4096 blocks) per page — the same
    // materialisation granularity as the previous chunked map.
    static constexpr unsigned pageBits = 7;
    static constexpr std::uint64_t blocksPerPage =
        (std::uint64_t{1} << pageBits) * blocksPerWord;

    static unsigned
    bitOffset(Addr a)
    {
        return static_cast<unsigned>((a % blocksPerWord) * 2);
    }

    TieredStore<std::uint64_t, pageBits> words_;
    Counter setstates_;
};

/** Aggregated tiered-storage counters across a system's directories
 *  (the dirStore object of the dir2b.sweep v3 schema). */
struct DirStoreCounters
{
    std::uint64_t ramBudgetBytes = 0; ///< total configured budget
    std::uint64_t residentBytes = 0;  ///< hot raw + cold compressed
    std::uint64_t compressedBytes = 0;
    std::uint64_t segmentBytes = 0;   ///< appended to disk segments
    std::uint64_t hotPages = 0;
    std::uint64_t coldPages = 0;
    std::uint64_t diskPages = 0;
    std::uint64_t compressions = 0;
    std::uint64_t decompressions = 0;
    std::uint64_t diskPageWrites = 0;
    std::uint64_t diskPageReads = 0;

    void
    add(const TwoBitDirectory &dir)
    {
        ramBudgetBytes += dir.ramBudgetBytes();
        residentBytes += dir.residentBytes();
        compressedBytes += dir.compressedBytes();
        segmentBytes += dir.segmentBytes();
        hotPages += dir.hotPages();
        coldPages += dir.coldPages();
        diskPages += dir.diskPages();
        const TieredStoreStats &st = dir.storeStats();
        compressions += st.compressions;
        decompressions += st.decompressions;
        diskPageWrites += st.diskPageWrites;
        diskPageReads += st.diskPageReads;
    }
};

/** Split a total directory RAM budget evenly across modules
 *  (0 stays 0 = unlimited). */
constexpr std::uint64_t
perModuleDirBudget(std::uint64_t totalBytes, std::uint64_t modules)
{
    return modules ? totalBytes / modules : totalBytes;
}

/** One budgeted directory per memory module. */
inline std::vector<TwoBitDirectory>
makeTwoBitDirectories(ModuleId modules, std::uint64_t totalRamBudget)
{
    std::vector<TwoBitDirectory> dirs;
    dirs.reserve(modules);
    for (ModuleId m = 0; m < modules; ++m)
        dirs.emplace_back(perModuleDirBudget(totalRamBudget, modules));
    return dirs;
}

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_DIRECTORY_HH
