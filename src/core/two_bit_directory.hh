/**
 * @file
 * The two-bit-per-block directory storage itself.
 *
 * This is the data structure whose economy the paper is named for: a
 * packed array holding exactly two bits of global state per memory
 * block, independent of the number of processors.  For comparison, the
 * full map needs n+1 bits per block (~15% of memory for 16 processors
 * and 16-byte blocks, §2.4.2); this map needs 2 bits per block
 * regardless of n (~0.8% for the same geometry).
 *
 * The store is chunked so that sparse reference streams do not
 * materialise state for untouched regions, while still exposing the
 * true hardware cost via bitsPerBlock().
 */

#ifndef DIR2B_CORE_TWO_BIT_DIRECTORY_HH
#define DIR2B_CORE_TWO_BIT_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/global_state.hh"
#include "sim/stats.hh"
#include "util/types.hh"

namespace dir2b
{

/** Packed 2-bit/block global-state map (one per memory module). */
class TwoBitDirectory
{
  public:
    /** Global state of block a (Absent until first touched). */
    GlobalState
    get(Addr a) const
    {
        auto it = chunks_.find(a >> chunkShift);
        if (it == chunks_.end())
            return GlobalState::Absent;
        const std::uint64_t word = it->second[wordIndex(a)];
        return static_cast<GlobalState>((word >> bitOffset(a)) & 0x3);
    }

    /** The paper's SETSTATE(a, st). */
    void
    set(Addr a, GlobalState st)
    {
        ++setstates_;
        auto &chunk = chunks_[a >> chunkShift];
        if (chunk.empty())
            chunk.assign(wordsPerChunk, 0);
        std::uint64_t &word = chunk[wordIndex(a)];
        word &= ~(0x3ULL << bitOffset(a));
        word |= static_cast<std::uint64_t>(st) << bitOffset(a);
    }

    /** Number of SETSTATE operations performed. */
    std::uint64_t setstateCount() const { return setstates_.value(); }

    /** Hardware cost of this scheme, per block, in bits. */
    static constexpr unsigned bitsPerBlock() { return 2; }

    /** Bits of directory storage currently materialised. */
    std::uint64_t
    materialisedBits() const
    {
        return chunks_.size() * blocksPerChunk * bitsPerBlock();
    }

  private:
    // 4096 blocks (1 KiB of directory) per chunk.
    static constexpr unsigned chunkShift = 12;
    static constexpr std::uint64_t blocksPerChunk = 1ULL << chunkShift;
    static constexpr std::uint64_t wordsPerChunk = blocksPerChunk / 32;

    static std::size_t
    wordIndex(Addr a)
    {
        return static_cast<std::size_t>((a & (blocksPerChunk - 1)) / 32);
    }

    static unsigned
    bitOffset(Addr a)
    {
        return static_cast<unsigned>((a % 32) * 2);
    }

    std::unordered_map<Addr, std::vector<std::uint64_t>> chunks_;
    Counter setstates_;
};

} // namespace dir2b

#endif // DIR2B_CORE_TWO_BIT_DIRECTORY_HH
