/**
 * @file
 * Statistics framework.
 *
 * Components register named statistics in a StatGroup; experiments dump
 * groups in a uniform "name value [description]" format.  Three
 * primitives cover everything dir2b measures:
 *
 *  - Counter:   monotonically increasing event count;
 *  - Mean:      running average (sum / samples);
 *  - Histogram: fixed-width bucket distribution with min/max/mean.
 */

#ifndef DIR2B_SIM_STATS_HH
#define DIR2B_SIM_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dir2b
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class Mean
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t samples() const { return count_; }
    void reset() { sum_ = 0; count_ = 0; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram with overflow bucket and summary moments. */
class Histogram
{
  public:
    /** @param bucketWidth width of each bucket
     *  @param nbuckets    number of regular buckets (plus overflow) */
    explicit Histogram(std::uint64_t bucketWidth = 1,
                       std::size_t nbuckets = 32);

    void sample(std::uint64_t v);

    std::uint64_t samples() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /** Count in bucket i; the last bucket collects overflow. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

    /** Smallest v such that at least frac of samples are <= v. */
    std::uint64_t percentile(double frac) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    /**
     * Fold another histogram of identical geometry (bucket width and
     * count) into this one — cross-shard / cross-controller
     * aggregation for sweep summaries.  Panics on geometry mismatch.
     */
    void merge(const Histogram &other);

    void reset();

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * Read-only visitor over a StatGroup's entries, in registration
 * order.  The report layer serializes groups through this interface;
 * derived statistics arrive pre-evaluated.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;
    virtual void onCounter(const std::string &name,
                           const std::string &desc, const Counter &c) = 0;
    virtual void onMean(const std::string &name, const std::string &desc,
                        const Mean &m) = 0;
    virtual void onHistogram(const std::string &name,
                             const std::string &desc,
                             const Histogram &h) = 0;
    virtual void onDerived(const std::string &name,
                           const std::string &desc, double value) = 0;
};

/** A named collection of statistics that can render itself. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(std::string name, const Counter *c,
                    std::string desc = "");
    void addMean(std::string name, const Mean *m, std::string desc = "");
    void addHistogram(std::string name, const Histogram *h,
                      std::string desc = "");

    /** Register a derived statistic computed at dump time. */
    void addDerived(std::string name, double (*fn)(const void *),
                    const void *ctx, std::string desc = "");

    const std::string &name() const { return name_; }

    /** Write "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;

    /** Visit every entry in registration order. */
    void visit(StatVisitor &v) const;

  private:
    enum class Kind { Count, Avg, Hist, Derived };

    struct Entry
    {
        Kind kind;
        std::string name;
        std::string desc;
        const void *ptr;
        double (*fn)(const void *) = nullptr;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace dir2b

#endif // DIR2B_SIM_STATS_HH
