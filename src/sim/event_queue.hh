/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The timed tier of dir2b (controllers, networks, processors) runs on a
 * single global event queue.  Events scheduled for the same tick fire
 * in FIFO order of scheduling, which makes runs bit-for-bit
 * deterministic regardless of scheduler internals.
 *
 * Internals (rewritten from a std::function + std::priority_queue
 * kernel; the golden digests in tests/test_golden_digest.cc pin that
 * the rewrite changed nothing observable):
 *
 *  - Events live in arena nodes recycled through a freelist, so the
 *    steady state performs no allocation per event.  Callbacks are
 *    stored inline in the node (InlineFunction); a capture larger
 *    than the inline buffer falls back to the heap and is counted.
 *
 *  - Scheduling uses a hierarchical timing wheel: four levels of 64
 *    slots, level L spanning deltas below 64^(L+1) ticks, each with a
 *    64-bit occupancy bitmap so the next event is found with a rotate
 *    and a count-trailing-zeros instead of heap rebalancing.  Deltas
 *    of 64^4 ticks or more wait in a small (when, seq) min-heap and
 *    migrate into the wheel as time approaches.
 *
 *  - FIFO order within a tick is preserved exactly: slot lists append
 *    in schedule order, and because a bucket cascade can interleave an
 *    early-scheduled event behind a later direct insert, each drained
 *    slot is verified (and, rarely, re-sorted) by sequence number
 *    before firing.
 *
 * Sharded (conservative-parallel) extensions: a sharded timed run
 * (timed/sharded_system.hh) gives every shard its own EventQueue and
 * advances them in lookahead-bounded epochs.  runUntil() executes
 * strictly below a horizon; beginEpoch() attaches an EpochLog that
 * records every schedule call and external side effect of every fired
 * event; scheduleAtKeyed() and rewriteKey() let the inter-epoch merge
 * assign the exact tie-break keys the serial engine would have used,
 * so a sharded run drains every slot in the serial FIFO order.  None
 * of these paths are active in a plain run(): serial behaviour is
 * bit-identical to the pre-shard kernel (the golden digests pin it).
 */

#ifndef DIR2B_SIM_EVENT_QUEUE_HH
#define DIR2B_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/shard_log.hh"
#include "util/inline_function.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace dir2b
{

/** Global FIFO-stable discrete-event queue. */
class EventQueue
{
  public:
    /** Inline capture capacity: the largest timed-tier callback
     *  ([this, src, dst, msg]) is ~48 bytes; oversized captures heap-
     *  allocate and show up in InlineFunction::heapFallbacks(). */
    static constexpr std::size_t inlineBytes = 104;

    using Callback = InlineFunction<inlineBytes>;

    EventQueue() { arena_.reserve(1024); }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return pending_; }

    /** Schedule a callback at an absolute tick >= now(). */
    template <typename F>
    void
    scheduleAt(Tick when, F &&cb)
    {
        DIR2B_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        const std::uint32_t idx = allocNode();
        Node &n = arena_[idx];
        n.when = when;
        n.seq = seq_++;
        n.id = ++idSrc_;
        n.cb = std::forward<F>(cb);
        placeNode(idx);
        ++pending_;
        if (log_)
            appendCall(EpochLog::CallKind::Schedule, 0, n.id, idx);
    }

    /**
     * Schedule a callback under an explicit tie-break key instead of
     * the next sequence number.  Equal-tick events still drain in
     * ascending key order, so the inter-epoch merge of a sharded run
     * uses this to inject cross-shard deliveries (and the initial
     * per-processor kicks) with exactly the keys the serial engine
     * would have assigned.  Never logged: injections happen at the
     * barrier, outside any epoch.
     */
    template <typename F>
    void
    scheduleAtKeyed(Tick when, std::uint64_t key, F &&cb)
    {
        DIR2B_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        const std::uint32_t idx = allocNode();
        Node &n = arena_[idx];
        n.when = when;
        n.seq = key;
        n.id = ++idSrc_;
        n.cb = std::forward<F>(cb);
        placeNode(idx);
        ++pending_;
    }

    /** Schedule a callback delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&cb)
    {
        scheduleAt(now_ + delay, std::forward<F>(cb));
    }

    /**
     * Run until the queue drains or maxEvents have executed.
     * @return true if the queue drained, false if the budget expired
     *         (the usual sign of livelock in a protocol under test).
     */
    bool
    run(std::uint64_t maxEvents = ~0ULL)
    {
        std::uint64_t budget = maxEvents;
        while (pending_ != 0) {
            advance<false>(0);
            if (!drainCurrentSlot(budget))
                return false;
        }
        return true;
    }

    /**
     * Execute every pending event with when < horizon (one epoch of a
     * sharded run).  now() never advances to or beyond the horizon, so
     * a barrier may afterwards inject events at any tick >= horizon.
     * @return false when the budget ran out before the horizon.
     */
    bool
    runUntil(Tick horizon, std::uint64_t &budget)
    {
        while (pending_ != 0) {
            if (!advance<true>(horizon))
                return true; // nothing left below the horizon
            if (!drainCurrentSlot(budget))
                return false;
        }
        return true;
    }

    /**
     * A lower bound on the when of the earliest pending event (exact
     * when that event sits in level 0 or the overflow heap; a bucket
     * start otherwise); maxTick when the queue is empty.  Lookahead
     * horizons derive from the global minimum of these bounds — a
     * bound that is merely low costs a shorter epoch, never an order
     * violation.
     */
    Tick
    nextTickLowerBound() const
    {
        if (pending_ == 0)
            return maxTick;
        return minCandidate().when;
    }

    /**
     * The *exact* when of the earliest pending event (maxTick when the
     * queue is empty).  Where nextTickLowerBound() reports only a
     * bucket start for events sitting in level >= 1, this walks the
     * candidate buckets' node lists and returns the true minimum —
     * the quiescent-epoch fast-forward of the sharded engine uses it
     * to jump an idle gap in one epoch instead of refining bucket
     * bounds across several.  Cost is bounded by the nodes in buckets
     * whose start beats the best exact candidate: on the sparse runs
     * where fast-forward matters, that is a handful of nodes; on dense
     * runs the level-0 candidate wins immediately and no list is
     * walked.
     */
    Tick
    nextTickExact() const
    {
        if (pending_ == 0)
            return maxTick;
        Tick best = maxTick;
        if (!over_.empty())
            best = arena_[over_.front()].when;
        if (levels_[0].occ) {
            const auto curSlot =
                static_cast<unsigned>(now_ & (slotCount - 1));
            const unsigned d = static_cast<unsigned>(
                std::countr_zero(
                    std::rotr(levels_[0].occ, curSlot)));
            best = std::min(best, now_ + d);
        }
        for (unsigned lv = 1; lv < levelCount; ++lv) {
            if (!levels_[lv].occ)
                continue;
            const Tick cur = now_ >> (slotBits * lv);
            const auto curSlot = static_cast<unsigned>(
                cur & (slotCount - 1));
            std::uint64_t bits = levels_[lv].occ;
            while (bits) {
                const auto slot = static_cast<unsigned>(
                    std::countr_zero(bits));
                bits &= bits - 1;
                const unsigned d = (slot - curSlot) & (slotCount - 1);
                const Tick start =
                    d == 0 ? now_ : (cur + d) << (slotBits * lv);
                if (start >= best)
                    continue;
                for (std::uint32_t n = levels_[lv].head[slot];
                     n != nil; n = arena_[n].next)
                    best = std::min(best, arena_[n].when);
            }
        }
        DIR2B_ASSERT(best >= now_, "exact bound behind now");
        return best;
    }

    /** Start logging an epoch: every schedule call and external side
     *  effect of every fired event is appended to log; freshly
     *  scheduled events draw provisional keys from keyBase up. */
    void
    beginEpoch(EpochLog *log, std::uint64_t keyBase)
    {
        DIR2B_ASSERT(log != nullptr, "beginEpoch without a log");
        log_ = log;
        seq_ = keyBase;
        curId_ = 0;
    }

    /** Stop epoch logging (the barrier owns the log afterwards). */
    void
    endEpoch()
    {
        log_ = nullptr;
    }

    /** Record an external side effect (network send, oracle
     *  completion) of the currently executing event; aux indexes the
     *  caller's own side-effect table. */
    void
    logExternalCall(std::uint32_t aux)
    {
        appendCall(EpochLog::CallKind::External, aux, 0, nil);
    }

    /**
     * Replace a pending node's tie-break key with the final key the
     * serial engine would have assigned.  A no-op when the node
     * already fired (its arena slot was freed or reused: the unique id
     * no longer matches).  Callers must rebuildOverflowHeap() after a
     * batch of rewrites, since keys order the overflow heap.
     */
    bool
    rewriteKey(std::uint32_t nodeIdx, std::uint64_t id, std::uint64_t key)
    {
        if (nodeIdx >= arena_.size())
            return false;
        Node &n = arena_[nodeIdx];
        if (n.id != id)
            return false;
        n.seq = key;
        return true;
    }

    /** Restore the overflow-heap invariant after rewriteKey calls. */
    void
    rebuildOverflowHeap()
    {
        if (over_.size() > 1) {
            std::make_heap(over_.begin(), over_.end(),
                           [this](std::uint32_t a, std::uint32_t b) {
                               return laterThan(a, b);
                           });
        }
    }

    /** Drop all pending events (end of a run). */
    void
    reset()
    {
        arena_.clear(); // destroys pending callbacks
        freeHead_ = nil;
        over_.clear();
        for (Level &lv : levels_) {
            lv.occ = 0;
            lv.head.assign(slotCount, nil);
            lv.tail.assign(slotCount, nil);
        }
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
        pending_ = 0;
        log_ = nullptr;
        idSrc_ = 0;
        curId_ = 0;
    }

  private:
    static constexpr unsigned slotBits = 6;
    static constexpr std::size_t slotCount = 1u << slotBits;
    static constexpr unsigned levelCount = 4;
    /** Deltas at or beyond 64^4 ticks wait in the overflow heap. */
    static constexpr Tick horizon = Tick{1}
                                    << (slotBits * levelCount);
    static constexpr std::uint32_t nil = ~std::uint32_t{0};

    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        /** Unique per schedule call, 0 while free: lets rewriteKey
         *  reject a slot that was freed or reused since logging. */
        std::uint64_t id = 0;
        std::uint32_t next = nil;
        Callback cb;
    };

    struct Level
    {
        std::vector<std::uint32_t> head =
            std::vector<std::uint32_t>(slotCount, nil);
        std::vector<std::uint32_t> tail =
            std::vector<std::uint32_t>(slotCount, nil);
        std::uint64_t occ = 0;
    };

    std::uint32_t
    allocNode()
    {
        if (freeHead_ != nil) {
            const std::uint32_t idx = freeHead_;
            freeHead_ = arena_[idx].next;
            return idx;
        }
        arena_.emplace_back();
        return static_cast<std::uint32_t>(arena_.size() - 1);
    }

    void
    freeNode(std::uint32_t idx)
    {
        arena_[idx].id = 0;
        arena_[idx].next = freeHead_;
        freeHead_ = idx;
    }

    /** Append a call record for the currently executing event. */
    void
    appendCall(EpochLog::CallKind kind, std::uint32_t aux,
               std::uint64_t childId, std::uint32_t nodeIdx)
    {
        DIR2B_ASSERT(log_ && curId_ != 0,
                     "epoch log call outside an executing event");
        if (log_->execs.empty() || log_->execs.back().id != curId_) {
            log_->execs.push_back(
                {now_, curKey_, curId_,
                 static_cast<std::uint32_t>(log_->calls.size()), 0});
        }
        log_->calls.push_back({kind, aux, nodeIdx, childId});
        ++log_->execs.back().numCalls;
    }

    /**
     * File a node into its wheel slot (or the overflow heap).
     *
     * An event goes to the smallest level whose digits above it agree
     * between when and now_ (the "same cycle" rule).  Picking the
     * level from the raw delta instead would wrap: a delta just under
     * 64^4 that crosses enough digit boundaries lands a full cycle
     * ahead in the CURRENT level-3 bucket.  With the prefix rule an
     * occupied slot is always strictly ahead of now_ within its
     * cycle, so circular bitmap distances are exact.
     */
    void
    placeNode(std::uint32_t idx)
    {
        Node &n = arena_[idx];
        n.next = nil;
        unsigned level = 0;
        while (level < levelCount &&
               (n.when >> (slotBits * (level + 1))) !=
                   (now_ >> (slotBits * (level + 1))))
            ++level;
        if (level == levelCount) {
            over_.push_back(idx);
            std::push_heap(over_.begin(), over_.end(),
                           [this](std::uint32_t a, std::uint32_t b) {
                               return laterThan(a, b);
                           });
            return;
        }
        const auto slot = static_cast<std::size_t>(
            (n.when >> (slotBits * level)) & (slotCount - 1));
        Level &lv = levels_[level];
        if (lv.tail[slot] == nil) {
            lv.head[slot] = idx;
        } else {
            arena_[lv.tail[slot]].next = idx;
        }
        lv.tail[slot] = idx;
        lv.occ |= std::uint64_t{1} << slot;
    }

    /** Overflow-heap ordering: true if a fires after b. */
    bool
    laterThan(std::uint32_t a, std::uint32_t b) const
    {
        const Node &na = arena_[a];
        const Node &nb = arena_[b];
        if (na.when != nb.when)
            return na.when > nb.when;
        return na.seq > nb.seq;
    }

    /** Detach and clear slot `slot` of level `level`. */
    std::uint32_t
    detachSlot(unsigned level, std::size_t slot)
    {
        Level &lv = levels_[level];
        const std::uint32_t head = lv.head[slot];
        lv.head[slot] = nil;
        lv.tail[slot] = nil;
        lv.occ &= ~(std::uint64_t{1} << slot);
        return head;
    }

    struct Candidate
    {
        Tick when;
        int level;
    };

    /**
     * The earliest jump candidate: a level-0 slot gives an exact time
     * (level-0 deltas are < 64, so circular distance is absolute),
     * while a level>=1 bucket gives only its start — a lower bound on
     * everything in it — and the overflow top is exact.  Requires
     * pending_ > 0.
     */
    Candidate
    minCandidate() const
    {
        Tick best = ~Tick{0};
        int bestLevel = -1;
        if (!over_.empty()) {
            best = arena_[over_.front()].when;
            bestLevel = levelCount; // sentinel: jump-and-migrate
        }
        for (unsigned lv = levelCount - 1; lv >= 1; --lv) {
            if (!levels_[lv].occ)
                continue;
            const Tick cur = now_ >> (slotBits * lv);
            const auto curSlot = static_cast<unsigned>(
                cur & (slotCount - 1));
            const unsigned d = static_cast<unsigned>(
                std::countr_zero(
                    std::rotr(levels_[lv].occ, curSlot)));
            // d == 0 (the current-digit bucket is occupied) can
            // happen right after a jump that landed exactly on a
            // bucket boundary via a different candidate; such a
            // bucket must cascade before anything executes, so it
            // bids now_ itself, the unbeatable minimum.
            const Tick start =
                d == 0 ? now_ : (cur + d) << (slotBits * lv);
            if (start < best) {
                best = start;
                bestLevel = static_cast<int>(lv);
            }
        }
        if (levels_[0].occ) {
            const auto curSlot =
                static_cast<unsigned>(now_ & (slotCount - 1));
            const unsigned d = static_cast<unsigned>(
                std::countr_zero(
                    std::rotr(levels_[0].occ, curSlot)));
            const Tick cand = now_ + d;
            if (cand < best) {
                best = cand;
                bestLevel = 0;
            }
        }
        DIR2B_ASSERT(bestLevel >= 0, "pending events but no slot");
        DIR2B_ASSERT(best >= now_, "event queue time warp");
        return {best, bestLevel};
    }

    /**
     * Move now_ to the next event time, cascading higher-level
     * buckets and migrating overflow nodes until the level-0 slot at
     * now_ holds the earliest pending events.  Requires pending_ > 0.
     *
     * Correctness hinges on candidate selection (minCandidate): the
     * jump target is the global minimum over exact times and bucket
     * lower bounds, and a bucket chosen at its lower bound is cascaded
     * and re-evaluated rather than executed, so a level-0 jump can
     * never skip over an earlier event hiding in a bucket.
     *
     * Bounded (the sharded epoch path): returns false — with now_
     * strictly below the horizon — as soon as the candidate minimum
     * reaches the horizon.  Cascades performed before that point only
     * refine bucket bounds, so nextTickLowerBound() grows across
     * epochs and the epoch loop always makes progress.  Returns true
     * when positioned on a drainable level-0 slot.
     */
    template <bool Bounded>
    bool
    advance(Tick horizon)
    {
        for (;;) {
            while (!over_.empty() &&
                   (arena_[over_.front()].when >>
                    (slotBits * levelCount)) ==
                       (now_ >> (slotBits * levelCount))) {
                std::pop_heap(over_.begin(), over_.end(),
                              [this](std::uint32_t a, std::uint32_t b) {
                                  return laterThan(a, b);
                              });
                const std::uint32_t idx = over_.back();
                over_.pop_back();
                placeNode(idx);
            }

            const Candidate c = minCandidate();
            if (Bounded && c.when >= horizon)
                return false;

            now_ = c.when;
            if (c.level == 0)
                return true;
            if (c.level == static_cast<int>(levelCount))
                continue; // overflow top: migrate at new now_
            // Cascade the chosen bucket into lower levels, in list
            // order so equal-tick FIFO is preserved where possible.
            const auto slot = static_cast<std::size_t>(
                (now_ >> (slotBits * c.level)) & (slotCount - 1));
            std::uint32_t n =
                detachSlot(static_cast<unsigned>(c.level), slot);
            while (n != nil) {
                const std::uint32_t next = arena_[n].next;
                placeNode(n);
                n = next;
            }
        }
    }

    /**
     * Fire the events in the level-0 slot at now_, re-checking the
     * slot afterwards because zero-delay callbacks append to it.
     * @return false when the budget ran out (undrained nodes are
     *         reinserted ahead of any newly scheduled same-tick ones).
     */
    bool
    drainCurrentSlot(std::uint64_t &budget)
    {
        const auto slot = static_cast<std::size_t>(now_ & (slotCount - 1));
        while (levels_[0].occ >> slot & 1) {
            scratch_.clear();
            for (std::uint32_t n = detachSlot(0, slot); n != nil;
                 n = arena_[n].next) {
                DIR2B_ASSERT(arena_[n].when == now_,
                             "level-0 slot holds foreign tick");
                scratch_.push_back(n);
            }
            // A cascade can append an early-scheduled (low-seq) node
            // behind a later direct insert; restore FIFO order.  The
            // sortedness check keeps the common path linear.
            if (!std::is_sorted(scratch_.begin(), scratch_.end(),
                                [this](std::uint32_t a,
                                       std::uint32_t b) {
                                    return arena_[a].seq <
                                           arena_[b].seq;
                                })) {
                std::sort(scratch_.begin(), scratch_.end(),
                          [this](std::uint32_t a, std::uint32_t b) {
                              return arena_[a].seq < arena_[b].seq;
                          });
            }
            for (std::size_t i = 0; i < scratch_.size(); ++i) {
                if (budget == 0) {
                    reinsertUndrained(slot, i);
                    return false;
                }
                --budget;
                const std::uint32_t idx = scratch_[i];
                if (log_) {
                    curId_ = arena_[idx].id;
                    curKey_ = arena_[idx].seq;
                }
                Callback cb = std::move(arena_[idx].cb);
                freeNode(idx);
                --pending_;
                ++executed_;
                cb();
            }
        }
        return true;
    }

    /** Put scratch_[from..] back at the front of the given slot,
     *  ahead of any same-tick events scheduled during the drain. */
    void
    reinsertUndrained(std::size_t slot, std::size_t from)
    {
        std::uint32_t head = levels_[0].head[slot];
        std::uint32_t tail = levels_[0].tail[slot];
        for (std::size_t i = scratch_.size(); i-- > from;) {
            const std::uint32_t idx = scratch_[i];
            arena_[idx].next = head;
            head = idx;
            if (tail == nil)
                tail = idx;
        }
        levels_[0].head[slot] = head;
        levels_[0].tail[slot] = tail;
        if (head != nil)
            levels_[0].occ |= std::uint64_t{1} << slot;
    }

    std::vector<Node> arena_;
    std::uint32_t freeHead_ = nil;
    Level levels_[levelCount];
    /** Min-heap (by when, then seq) of beyond-horizon node indices. */
    std::vector<std::uint32_t> over_;
    /** Drain batch reused across ticks. */
    std::vector<std::uint32_t> scratch_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;

    /** Epoch-mode state (null/idle during a plain serial run). */
    EpochLog *log_ = nullptr;
    std::uint64_t idSrc_ = 0;
    std::uint64_t curId_ = 0;
    std::uint64_t curKey_ = 0;
};

} // namespace dir2b

#endif // DIR2B_SIM_EVENT_QUEUE_HH
