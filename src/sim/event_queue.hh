/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The timed tier of dir2b (controllers, networks, processors) runs on a
 * single global event queue.  Events scheduled for the same tick fire
 * in FIFO order of scheduling, which makes runs bit-for-bit
 * deterministic regardless of heap internals.
 */

#ifndef DIR2B_SIM_EVENT_QUEUE_HH
#define DIR2B_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace dir2b
{

/** Global FIFO-stable discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Schedule a callback at an absolute tick >= now(). */
    void
    scheduleAt(Tick when, Callback cb)
    {
        DIR2B_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        heap_.push(Entry{when, seq_++, std::move(cb)});
    }

    /** Schedule a callback delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Run until the queue drains or maxEvents have executed.
     * @return true if the queue drained, false if the budget expired
     *         (the usual sign of livelock in a protocol under test).
     */
    bool
    run(std::uint64_t maxEvents = ~0ULL)
    {
        std::uint64_t budget = maxEvents;
        while (!heap_.empty()) {
            if (budget-- == 0)
                return false;
            Entry e = heap_.top();
            heap_.pop();
            DIR2B_ASSERT(e.when >= now_, "event queue time warp");
            now_ = e.when;
            ++executed_;
            e.cb();
        }
        return true;
    }

    /** Drop all pending events (end of a run). */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dir2b

#endif // DIR2B_SIM_EVENT_QUEUE_HH
