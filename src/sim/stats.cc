#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

Histogram::Histogram(std::uint64_t bucketWidth, std::size_t nbuckets)
    : bucketWidth_(bucketWidth), buckets_(nbuckets + 1, 0)
{
    DIR2B_ASSERT(bucketWidth > 0, "histogram bucket width must be > 0");
    DIR2B_ASSERT(nbuckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++count_;
    sum_ += static_cast<double>(v);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

std::uint64_t
Histogram::percentile(double frac) const
{
    DIR2B_ASSERT(frac >= 0.0 && frac <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        frac * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            if (i == buckets_.size() - 1)
                return max_;
            return (i + 1) * bucketWidth_ - 1;
        }
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    DIR2B_ASSERT(bucketWidth_ == other.bucketWidth_ &&
                     buckets_.size() == other.buckets_.size(),
                 "histogram merge requires identical geometry");
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

void
StatGroup::addCounter(std::string name, const Counter *c, std::string desc)
{
    entries_.push_back(
        Entry{Kind::Count, std::move(name), std::move(desc), c});
}

void
StatGroup::addMean(std::string name, const Mean *m, std::string desc)
{
    entries_.push_back(
        Entry{Kind::Avg, std::move(name), std::move(desc), m});
}

void
StatGroup::addHistogram(std::string name, const Histogram *h,
                        std::string desc)
{
    entries_.push_back(
        Entry{Kind::Hist, std::move(name), std::move(desc), h});
}

void
StatGroup::addDerived(std::string name, double (*fn)(const void *),
                      const void *ctx, std::string desc)
{
    Entry e{Kind::Derived, std::move(name), std::move(desc), ctx};
    e.fn = fn;
    entries_.push_back(std::move(e));
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat, const std::string &value,
                    const std::string &desc) {
        os << std::left << std::setw(40) << (name_ + "." + stat) << " "
           << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << "\n";
    };

    for (const auto &e : entries_) {
        switch (e.kind) {
          case Kind::Count: {
            const auto *c = static_cast<const Counter *>(e.ptr);
            line(e.name, std::to_string(c->value()), e.desc);
            break;
          }
          case Kind::Avg: {
            const auto *m = static_cast<const Mean *>(e.ptr);
            std::ostringstream v;
            v << std::fixed << std::setprecision(4) << m->mean();
            line(e.name, v.str(), e.desc);
            break;
          }
          case Kind::Hist: {
            const auto *h = static_cast<const Histogram *>(e.ptr);
            std::ostringstream v;
            v << std::fixed << std::setprecision(2) << h->mean() << " ["
              << h->min() << "," << h->max() << "]";
            line(e.name, v.str(), e.desc);
            break;
          }
          case Kind::Derived: {
            std::ostringstream v;
            v << std::fixed << std::setprecision(4) << e.fn(e.ptr);
            line(e.name, v.str(), e.desc);
            break;
          }
        }
    }
}

void
StatGroup::visit(StatVisitor &v) const
{
    for (const auto &e : entries_) {
        switch (e.kind) {
          case Kind::Count:
            v.onCounter(e.name, e.desc,
                        *static_cast<const Counter *>(e.ptr));
            break;
          case Kind::Avg:
            v.onMean(e.name, e.desc, *static_cast<const Mean *>(e.ptr));
            break;
          case Kind::Hist:
            v.onHistogram(e.name, e.desc,
                          *static_cast<const Histogram *>(e.ptr));
            break;
          case Kind::Derived:
            v.onDerived(e.name, e.desc, e.fn(e.ptr));
            break;
        }
    }
}

} // namespace dir2b
