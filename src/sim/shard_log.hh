/**
 * @file
 * Execution log of one shard epoch (conservative parallel simulation).
 *
 * A sharded timed run (timed/sharded_system.hh) advances every shard's
 * private EventQueue independently up to a lookahead horizon, then
 * replays the epoch's side effects single-threaded in exact serial
 * order.  The replay needs to know, for every event that fired,
 *
 *  - WHEN it fired and under which tie-break key (so an S-way merge
 *    over the per-shard logs visits events in the order the serial
 *    engine would have executed them), and
 *  - WHAT it scheduled or emitted, in call order (so each schedule
 *    call can be re-keyed with the key the serial engine would have
 *    assigned, and each network send / oracle completion can be
 *    replayed against the shared state).
 *
 * The EventQueue appends to this log while an epoch is active
 * (EventQueue::beginEpoch); the merge in ShardedTimedSystem consumes
 * it.  Both halves of an entry pair are plain indices into flat
 * vectors, so a log is cheap to clear and reuse every epoch.
 */

#ifndef DIR2B_SIM_SHARD_LOG_HH
#define DIR2B_SIM_SHARD_LOG_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace dir2b
{

/** Per-epoch record of everything one shard's wheel executed. */
struct EpochLog
{
    enum class CallKind : std::uint8_t
    {
        /** A scheduleAt()/schedule() call: a child event was created
         *  under a provisional key and may need re-keying. */
        Schedule,
        /** An external side effect (network send, oracle completion)
         *  deferred to the barrier; `aux` indexes the owner's own
         *  side-effect table. */
        External,
    };

    /** One side-effecting call made while an event executed. */
    struct Call
    {
        CallKind kind;
        /** External: index into the owner's side-effect table. */
        std::uint32_t aux = 0;
        /** Schedule: arena slot of the child node at creation. */
        std::uint32_t nodeIdx = 0;
        /** Schedule: unique id of the child node (guards re-keying
         *  against arena-slot reuse). */
        std::uint64_t childId = 0;
    };

    /** One executed event that made at least one logged call. */
    struct Exec
    {
        Tick tick = 0;
        /** The key the event fired under: final if it was scheduled
         *  before this epoch (or injected at a barrier), provisional
         *  if it was scheduled within the epoch. */
        std::uint64_t key = 0;
        /** The fired node's unique id (matches the creating call's
         *  childId when the event was scheduled this epoch). */
        std::uint64_t id = 0;
        /** Slice [firstCall, firstCall + numCalls) of `calls`. */
        std::uint32_t firstCall = 0;
        std::uint32_t numCalls = 0;
    };

    std::vector<Exec> execs;
    std::vector<Call> calls;

    void
    clear()
    {
        execs.clear();
        calls.clear();
    }
};

} // namespace dir2b

#endif // DIR2B_SIM_SHARD_LOG_HH
