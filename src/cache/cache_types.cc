#include "cache/cache_types.hh"

#include "util/logging.hh"

namespace dir2b
{

std::string
toString(LineState s)
{
    switch (s) {
      case LineState::Invalid:
        return "Invalid";
      case LineState::Shared:
        return "Shared";
      case LineState::Exclusive:
        return "Exclusive";
      case LineState::Reserved:
        return "Reserved";
      case LineState::Modified:
        return "Modified";
      case LineState::Owned:
        return "Owned";
    }
    DIR2B_PANIC("unknown LineState ", static_cast<int>(s));
}

} // namespace dir2b
