/**
 * @file
 * Duplicate cache directory ("parallel cache controller", Section 4.4).
 *
 * The first enhancement the paper proposes keeps a second copy of each
 * cache's tag directory so that incoming broadcast commands can be
 * checked without stealing a cycle from the processor-facing side.  The
 * cache only loses a cycle when the broadcast block is actually
 * present.  This class models that duplicate directory: a set of block
 * addresses mirrored from the cache, plus counters separating filtered
 * (absent, free) checks from forwarded (present, one stolen cycle)
 * checks.
 */

#ifndef DIR2B_CACHE_SNOOP_FILTER_HH
#define DIR2B_CACHE_SNOOP_FILTER_HH

#include "sim/stats.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace dir2b
{

/** Mirror of one cache's tag directory for broadcast filtering. */
class SnoopFilter
{
  public:
    /** Mirror an installation (cache fill). */
    void
    insert(Addr a)
    {
        resident_.insert(a);
    }

    /** Mirror an invalidation or eviction. */
    void
    erase(Addr a)
    {
        resident_.erase(a);
    }

    /**
     * Check an incoming broadcast.  @return true if the block is
     * present and the command must be forwarded to the cache proper
     * (costing a stolen cycle); false if it can be absorbed here.
     */
    bool
    check(Addr a)
    {
        if (resident_.count(a)) {
            ++forwarded_;
            return true;
        }
        ++filtered_;
        return false;
    }

    /** Broadcast checks absorbed without disturbing the cache. */
    std::uint64_t filtered() const { return filtered_.value(); }

    /** Broadcast checks that had to steal a cache cycle. */
    std::uint64_t forwarded() const { return forwarded_.value(); }

    /** Number of mirrored blocks (must track the cache's validCount). */
    std::size_t size() const { return resident_.size(); }

    void
    clear()
    {
        resident_.clear();
    }

  private:
    FlatSet<Addr> resident_;
    Counter filtered_;
    Counter forwarded_;
};

} // namespace dir2b

#endif // DIR2B_CACHE_SNOOP_FILTER_HH
