/**
 * @file
 * Set-associative cache array.
 *
 * This is the storage half of a private cache C_k from the paper's
 * Figure 3-1: tags, local state bits (valid/modified and protocol
 * extensions) and the modelled block contents.  Protocol logic lives in
 * the controllers; the array only answers lookups, applies fills and
 * evictions, and keeps replacement metadata.
 */

#ifndef DIR2B_CACHE_CACHE_ARRAY_HH
#define DIR2B_CACHE_CACHE_ARRAY_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_types.hh"
#include "cache/replacement.hh"
#include "util/types.hh"

namespace dir2b
{

/** Geometry and policy of one cache. */
struct CacheGeometry
{
    /** Number of sets; must be a power of two. */
    std::size_t sets = 32;
    /** Associativity. */
    std::size_t ways = 4;
    /** Replacement policy. */
    ReplPolicyKind repl = ReplPolicyKind::Lru;
    /** Seed for the random policy. */
    std::uint64_t seed = 1;

    std::size_t blocks() const { return sets * ways; }
};

/** Tag/state/data storage of one private cache. */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom);

    /**
     * Find the line holding block a.
     * @param touch update replacement recency on hit
     * @return pointer into the array, or nullptr on miss
     */
    CacheLine *lookup(Addr a, bool touch = true);
    const CacheLine *peek(Addr a) const;

    /**
     * Choose the frame that block a would occupy: an invalid way if one
     * exists, otherwise the replacement victim.  Does not modify the
     * array; the caller inspects the returned line (possibly a valid
     * victim needing eviction) and then calls fill().
     */
    CacheLine &victimFor(Addr a);

    /**
     * Install block a in the frame victimFor(a) chose (or re-use the
     * existing line on an upgrade fill).  Any valid prior occupant must
     * already have been handled by the caller.
     */
    CacheLine &fill(Addr a, LineState state, Value value);

    /** Drop block a if present (invalidate). @return true if dropped. */
    bool invalidate(Addr a);

    /** Number of valid lines currently resident. */
    std::size_t validCount() const;

    /** Invoke fn on every valid line. */
    void forEachValid(const std::function<void(const CacheLine &)> &fn)
        const;

    /** Drop every line (cache flush, e.g. at context switch). */
    void flush();

    const CacheGeometry &geometry() const { return geom_; }

  private:
    std::size_t setIndex(Addr a) const { return a & (geom_.sets - 1); }
    CacheLine &line(std::size_t set, std::size_t way);
    const CacheLine &line(std::size_t set, std::size_t way) const;
    std::optional<std::size_t> findWay(std::size_t set, Addr a) const;

    CacheGeometry geom_;
    std::vector<CacheLine> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
};

} // namespace dir2b

#endif // DIR2B_CACHE_CACHE_ARRAY_HH
