/**
 * @file
 * BIAS memory: repeated-invalidation filter for the classical scheme.
 *
 * Section 2.3 notes that the cache cycles spent processing the
 * classical solution's invalidation storm "can be minimized by a 'BIAS
 * memory' which filters out repeated invalidation requests for the same
 * block" (Bean et al., cited through Smith's survey).  The filter is a
 * small fully-associative buffer of block addresses whose invalidation
 * has already been applied and that the local processor has not touched
 * since; a repeated invalidation for a remembered block needs no cache
 * directory cycle.
 */

#ifndef DIR2B_CACHE_BIAS_FILTER_HH
#define DIR2B_CACHE_BIAS_FILTER_HH

#include <cstddef>
#include <list>

#include "sim/stats.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace dir2b
{

/** LRU buffer of recently filtered invalidation addresses. */
class BiasFilter
{
  public:
    /** @param capacity number of remembered addresses (0 disables). */
    explicit BiasFilter(std::size_t capacity) : capacity_(capacity) {}

    /**
     * An invalidation for block a arrived.  @return true if it can be
     * absorbed (a repeat for a block already invalidated); false if the
     * cache directory must be cycled, after which a is remembered.
     */
    bool
    onInvalidate(Addr a)
    {
        if (capacity_ == 0)
            return false;
        if (auto it = map_.find(a); it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++absorbed_;
            return true;
        }
        remember(a);
        ++passed_;
        return false;
    }

    /** The local processor referenced block a: it may be re-cached, so
     *  future invalidations must reach the directory again. */
    void
    onLocalReference(Addr a)
    {
        if (auto it = map_.find(a); it != map_.end()) {
            lru_.erase(it->second);
            map_.erase(it);
        }
    }

    /** Invalidations absorbed by the filter. */
    std::uint64_t absorbed() const { return absorbed_.value(); }

    /** Invalidations that cycled the cache directory. */
    std::uint64_t passed() const { return passed_.value(); }

    std::size_t size() const { return map_.size(); }

  private:
    void
    remember(Addr a)
    {
        lru_.push_front(a);
        map_[a] = lru_.begin();
        if (map_.size() > capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
    }

    std::size_t capacity_;
    std::list<Addr> lru_;
    FlatMap<Addr, std::list<Addr>::iterator> map_;
    Counter absorbed_;
    Counter passed_;
};

} // namespace dir2b

#endif // DIR2B_CACHE_BIAS_FILTER_HH
