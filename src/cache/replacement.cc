#include "cache/replacement.hh"

#include "util/logging.hh"

namespace dir2b
{

ReplPolicyKind
parseReplPolicy(const std::string &name)
{
    if (name == "lru")
        return ReplPolicyKind::Lru;
    if (name == "fifo")
        return ReplPolicyKind::Fifo;
    if (name == "random")
        return ReplPolicyKind::Random;
    DIR2B_FATAL("unknown replacement policy '", name,
                "' (expected lru, fifo, or random)");
}

LruPolicy::LruPolicy(std::size_t sets, std::size_t ways)
    : ReplacementPolicy(sets, ways), stamp_(sets * ways, 0)
{}

void
LruPolicy::touch(std::size_t set, std::size_t way)
{
    stamp_[set * ways_ + way] = ++clock_;
}

void
LruPolicy::install(std::size_t set, std::size_t way)
{
    stamp_[set * ways_ + way] = ++clock_;
}

std::size_t
LruPolicy::victim(std::size_t set)
{
    std::size_t best = 0;
    std::uint64_t bestStamp = ~0ULL;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (stamp_[set * ways_ + w] < bestStamp) {
            bestStamp = stamp_[set * ways_ + w];
            best = w;
        }
    }
    return best;
}

FifoPolicy::FifoPolicy(std::size_t sets, std::size_t ways)
    : ReplacementPolicy(sets, ways), stamp_(sets * ways, 0)
{}

void
FifoPolicy::touch(std::size_t, std::size_t)
{
    // FIFO ignores reference hits by definition.
}

void
FifoPolicy::install(std::size_t set, std::size_t way)
{
    stamp_[set * ways_ + way] = ++clock_;
}

std::size_t
FifoPolicy::victim(std::size_t set)
{
    std::size_t best = 0;
    std::uint64_t bestStamp = ~0ULL;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (stamp_[set * ways_ + w] < bestStamp) {
            bestStamp = stamp_[set * ways_ + w];
            best = w;
        }
    }
    return best;
}

RandomPolicy::RandomPolicy(std::size_t sets, std::size_t ways,
                           std::uint64_t seed)
    : ReplacementPolicy(sets, ways), rng_(seed)
{}

void
RandomPolicy::touch(std::size_t, std::size_t)
{
}

void
RandomPolicy::install(std::size_t, std::size_t)
{
}

std::size_t
RandomPolicy::victim(std::size_t)
{
    return rng_.range(ways_);
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::size_t sets,
                      std::size_t ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplPolicyKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplPolicyKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplPolicyKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
    }
    DIR2B_PANIC("unknown replacement policy kind");
}

} // namespace dir2b
