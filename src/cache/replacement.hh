/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * A policy tracks the access recency/insertion order of the ways in
 * each set and nominates a victim when an allocation finds no invalid
 * way.  Policies are per-cache objects; all state lives here rather
 * than in the lines so that CacheArray stays policy-agnostic.
 */

#ifndef DIR2B_CACHE_REPLACEMENT_HH
#define DIR2B_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace dir2b
{

/** Replacement policy selector. */
enum class ReplPolicyKind { Lru, Fifo, Random };

/** Parse "lru" / "fifo" / "random" (fatal on anything else). */
ReplPolicyKind parseReplPolicy(const std::string &name);

/** Abstract replacement policy over (set, way) coordinates. */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(std::size_t sets, std::size_t ways)
        : sets_(sets), ways_(ways)
    {}

    virtual ~ReplacementPolicy() = default;

    /** A lookup hit touched this way. */
    virtual void touch(std::size_t set, std::size_t way) = 0;

    /** A new block was installed in this way. */
    virtual void install(std::size_t set, std::size_t way) = 0;

    /** Nominate the victim way for this set. */
    virtual std::size_t victim(std::size_t set) = 0;

    /** Policy name for stats/reporting. */
    virtual std::string name() const = 0;

  protected:
    std::size_t sets_;
    std::size_t ways_;
};

/** Least-recently-used via per-set recency timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::size_t sets, std::size_t ways);

    void touch(std::size_t set, std::size_t way) override;
    void install(std::size_t set, std::size_t way) override;
    std::size_t victim(std::size_t set) override;
    std::string name() const override { return "lru"; }

  private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/** First-in-first-out: evicts by installation order, ignores touches. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::size_t sets, std::size_t ways);

    void touch(std::size_t set, std::size_t way) override;
    void install(std::size_t set, std::size_t way) override;
    std::size_t victim(std::size_t set) override;
    std::string name() const override { return "fifo"; }

  private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/** Uniform random victim selection (deterministic given the seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t sets, std::size_t ways, std::uint64_t seed);

    void touch(std::size_t set, std::size_t way) override;
    void install(std::size_t set, std::size_t way) override;
    std::size_t victim(std::size_t set) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Factory keyed by ReplPolicyKind. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::size_t sets,
                      std::size_t ways, std::uint64_t seed = 1);

} // namespace dir2b

#endif // DIR2B_CACHE_REPLACEMENT_HH
