#include "cache/cache_array.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace dir2b
{

CacheArray::CacheArray(const CacheGeometry &geom)
    : geom_(geom),
      lines_(geom.sets * geom.ways),
      repl_(makeReplacementPolicy(geom.repl, geom.sets, geom.ways,
                                  geom.seed))
{
    if (!isPowerOf2(geom_.sets))
        DIR2B_FATAL("cache sets (", geom_.sets,
                    ") must be a power of two");
    if (geom_.ways == 0)
        DIR2B_FATAL("cache associativity must be at least 1");
}

CacheLine &
CacheArray::line(std::size_t set, std::size_t way)
{
    return lines_[set * geom_.ways + way];
}

const CacheLine &
CacheArray::line(std::size_t set, std::size_t way) const
{
    return lines_[set * geom_.ways + way];
}

std::optional<std::size_t>
CacheArray::findWay(std::size_t set, Addr a) const
{
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        const CacheLine &l = line(set, w);
        if (l.valid() && l.addr == a)
            return w;
    }
    return std::nullopt;
}

CacheLine *
CacheArray::lookup(Addr a, bool touch)
{
    const std::size_t set = setIndex(a);
    auto way = findWay(set, a);
    if (!way)
        return nullptr;
    if (touch)
        repl_->touch(set, *way);
    return &line(set, *way);
}

const CacheLine *
CacheArray::peek(Addr a) const
{
    auto way = findWay(setIndex(a), a);
    return way ? &line(setIndex(a), *way) : nullptr;
}

CacheLine &
CacheArray::victimFor(Addr a)
{
    const std::size_t set = setIndex(a);
    DIR2B_ASSERT(!findWay(set, a),
                 "victimFor() on a block that is already resident");
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        if (!line(set, w).valid())
            return line(set, w);
    }
    return line(set, repl_->victim(set));
}

CacheLine &
CacheArray::fill(Addr a, LineState state, Value value)
{
    DIR2B_ASSERT(state != LineState::Invalid, "fill with Invalid state");
    const std::size_t set = setIndex(a);

    // Upgrade fill of an already-resident block.
    if (auto way = findWay(set, a)) {
        CacheLine &l = line(set, *way);
        l.state = state;
        l.value = value;
        repl_->touch(set, *way);
        return l;
    }

    CacheLine &frame = victimFor(a);
    DIR2B_ASSERT(!frame.valid(),
                 "fill over an unhandled valid victim (", frame.addr, ")");
    frame.addr = a;
    frame.state = state;
    frame.value = value;
    const auto way = static_cast<std::size_t>(&frame - &line(set, 0));
    repl_->install(set, way);
    return frame;
}

bool
CacheArray::invalidate(Addr a)
{
    CacheLine *l = lookup(a, false);
    if (!l)
        return false;
    l->state = LineState::Invalid;
    l->addr = invalidAddr;
    return true;
}

std::size_t
CacheArray::validCount() const
{
    std::size_t n = 0;
    for (const auto &l : lines_) {
        if (l.valid())
            ++n;
    }
    return n;
}

void
CacheArray::forEachValid(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &l : lines_) {
        if (l.valid())
            fn(l);
    }
}

void
CacheArray::flush()
{
    for (auto &l : lines_) {
        l.state = LineState::Invalid;
        l.addr = invalidAddr;
    }
}

} // namespace dir2b
