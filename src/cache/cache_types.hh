/**
 * @file
 * Local cache-line states shared by all protocol implementations.
 *
 * The paper's baseline caches keep a valid bit and a modified bit per
 * block (Section 2.4).  Several of the surveyed protocols extend the
 * local state: Goodman's write-once adds Reserved; Yen & Fu and the
 * Illinois scheme add an exclusive-clean state.  We use one enum wide
 * enough for every protocol; each protocol only ever stores the subset
 * it defines.
 */

#ifndef DIR2B_CACHE_CACHE_TYPES_HH
#define DIR2B_CACHE_CACHE_TYPES_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace dir2b
{

/** Local state of a cache line. */
enum class LineState : std::uint8_t
{
    /** No valid copy (valid bit off). */
    Invalid,
    /** Valid, unmodified; other copies may exist. */
    Shared,
    /** Valid, unmodified, guaranteed sole copy (Yen-Fu / Illinois E). */
    Exclusive,
    /** Written exactly once, memory still current (write-once R). */
    Reserved,
    /** Valid and modified; memory is stale (the paper's modified bit). */
    Modified,
    /** Valid, modified, but other clean copies exist; this cache must
     *  supply the block and eventually write it back (MOESI O). */
    Owned,
};

/** Human-readable state name. */
std::string toString(LineState s);

/** True for every state with the valid bit set. */
constexpr bool
isValid(LineState s)
{
    return s != LineState::Invalid;
}

/** True if memory may be stale relative to this copy. */
constexpr bool
isDirty(LineState s)
{
    return s == LineState::Modified || s == LineState::Owned;
}

/** One cache line: tag, local state, and the (modelled) block data. */
struct CacheLine
{
    Addr addr = invalidAddr;
    LineState state = LineState::Invalid;
    Value value = 0;

    bool valid() const { return state != LineState::Invalid; }
    bool dirty() const { return isDirty(state); }
};

} // namespace dir2b

#endif // DIR2B_CACHE_CACHE_TYPES_HH
