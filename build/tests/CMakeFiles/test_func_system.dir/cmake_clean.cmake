file(REMOVE_RECURSE
  "CMakeFiles/test_func_system.dir/test_func_system.cc.o"
  "CMakeFiles/test_func_system.dir/test_func_system.cc.o.d"
  "test_func_system"
  "test_func_system.pdb"
  "test_func_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_func_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
