# Empty dependencies file for test_func_system.
# This may be replaced when dependencies are built.
