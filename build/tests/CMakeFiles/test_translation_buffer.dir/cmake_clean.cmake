file(REMOVE_RECURSE
  "CMakeFiles/test_translation_buffer.dir/test_translation_buffer.cc.o"
  "CMakeFiles/test_translation_buffer.dir/test_translation_buffer.cc.o.d"
  "test_translation_buffer"
  "test_translation_buffer.pdb"
  "test_translation_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
