# Empty dependencies file for test_translation_buffer.
# This may be replaced when dependencies are built.
