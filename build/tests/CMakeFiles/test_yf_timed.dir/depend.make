# Empty dependencies file for test_yf_timed.
# This may be replaced when dependencies are built.
