file(REMOVE_RECURSE
  "CMakeFiles/test_yf_timed.dir/test_yf_timed.cc.o"
  "CMakeFiles/test_yf_timed.dir/test_yf_timed.cc.o.d"
  "test_yf_timed"
  "test_yf_timed.pdb"
  "test_yf_timed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yf_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
