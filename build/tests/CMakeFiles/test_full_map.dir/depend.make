# Empty dependencies file for test_full_map.
# This may be replaced when dependencies are built.
