file(REMOVE_RECURSE
  "CMakeFiles/test_full_map.dir/test_full_map.cc.o"
  "CMakeFiles/test_full_map.dir/test_full_map.cc.o.d"
  "test_full_map"
  "test_full_map.pdb"
  "test_full_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_full_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
