# Empty compiler generated dependencies file for test_timed_stress.
# This may be replaced when dependencies are built.
