file(REMOVE_RECURSE
  "CMakeFiles/test_timed_stress.dir/test_timed_stress.cc.o"
  "CMakeFiles/test_timed_stress.dir/test_timed_stress.cc.o.d"
  "test_timed_stress"
  "test_timed_stress.pdb"
  "test_timed_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
