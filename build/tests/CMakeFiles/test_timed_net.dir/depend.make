# Empty dependencies file for test_timed_net.
# This may be replaced when dependencies are built.
