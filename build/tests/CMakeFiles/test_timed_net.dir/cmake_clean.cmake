file(REMOVE_RECURSE
  "CMakeFiles/test_timed_net.dir/test_timed_net.cc.o"
  "CMakeFiles/test_timed_net.dir/test_timed_net.cc.o.d"
  "test_timed_net"
  "test_timed_net.pdb"
  "test_timed_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
