file(REMOVE_RECURSE
  "CMakeFiles/test_sharing_chain.dir/test_sharing_chain.cc.o"
  "CMakeFiles/test_sharing_chain.dir/test_sharing_chain.cc.o.d"
  "test_sharing_chain"
  "test_sharing_chain.pdb"
  "test_sharing_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharing_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
