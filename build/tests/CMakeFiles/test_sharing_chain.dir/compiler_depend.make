# Empty compiler generated dependencies file for test_sharing_chain.
# This may be replaced when dependencies are built.
