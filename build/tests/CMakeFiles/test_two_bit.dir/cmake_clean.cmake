file(REMOVE_RECURSE
  "CMakeFiles/test_two_bit.dir/test_two_bit.cc.o"
  "CMakeFiles/test_two_bit.dir/test_two_bit.cc.o.d"
  "test_two_bit"
  "test_two_bit.pdb"
  "test_two_bit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
