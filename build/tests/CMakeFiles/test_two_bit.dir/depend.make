# Empty dependencies file for test_two_bit.
# This may be replaced when dependencies are built.
