# Empty dependencies file for test_two_bit_wt.
# This may be replaced when dependencies are built.
