file(REMOVE_RECURSE
  "CMakeFiles/test_two_bit_wt.dir/test_two_bit_wt.cc.o"
  "CMakeFiles/test_two_bit_wt.dir/test_two_bit_wt.cc.o.d"
  "test_two_bit_wt"
  "test_two_bit_wt.pdb"
  "test_two_bit_wt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_bit_wt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
