# Empty dependencies file for test_fm_timed.
# This may be replaced when dependencies are built.
