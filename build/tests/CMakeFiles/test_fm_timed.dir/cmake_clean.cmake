file(REMOVE_RECURSE
  "CMakeFiles/test_fm_timed.dir/test_fm_timed.cc.o"
  "CMakeFiles/test_fm_timed.dir/test_fm_timed.cc.o.d"
  "test_fm_timed"
  "test_fm_timed.pdb"
  "test_fm_timed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fm_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
