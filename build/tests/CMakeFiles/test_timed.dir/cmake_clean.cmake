file(REMOVE_RECURSE
  "CMakeFiles/test_timed.dir/test_timed.cc.o"
  "CMakeFiles/test_timed.dir/test_timed.cc.o.d"
  "test_timed"
  "test_timed.pdb"
  "test_timed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
