file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_property.dir/test_geometry_property.cc.o"
  "CMakeFiles/test_geometry_property.dir/test_geometry_property.cc.o.d"
  "test_geometry_property"
  "test_geometry_property.pdb"
  "test_geometry_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
