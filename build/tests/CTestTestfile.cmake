# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_filters[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_two_bit[1]_include.cmake")
include("/root/repo/build/tests/test_full_map[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_translation_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_overhead_model[1]_include.cmake")
include("/root/repo/build/tests/test_sharing_chain[1]_include.cmake")
include("/root/repo/build/tests/test_timed[1]_include.cmake")
include("/root/repo/build/tests/test_timed_stress[1]_include.cmake")
include("/root/repo/build/tests/test_timed_net[1]_include.cmake")
include("/root/repo/build/tests/test_func_system[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_property[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_model[1]_include.cmake")
include("/root/repo/build/tests/test_trace_stats[1]_include.cmake")
include("/root/repo/build/tests/test_chain_vs_sim[1]_include.cmake")
include("/root/repo/build/tests/test_two_bit_wt[1]_include.cmake")
include("/root/repo/build/tests/test_fm_timed[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_yf_timed[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
