file(REMOVE_RECURSE
  "CMakeFiles/check_artifact.dir/check_artifact.cc.o"
  "CMakeFiles/check_artifact.dir/check_artifact.cc.o.d"
  "check_artifact"
  "check_artifact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
