# Empty compiler generated dependencies file for check_artifact.
# This may be replaced when dependencies are built.
