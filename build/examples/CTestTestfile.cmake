# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_tour "/root/repo/build/examples/protocol_tour")
set_tests_properties(example_protocol_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timed_race_demo "/root/repo/build/examples/timed_race_demo")
set_tests_properties(example_timed_race_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dir2bsim "/root/repo/build/examples/dir2bsim" "--refs" "20000" "--protocol" "two_bit_tb" "--tb" "16")
set_tests_properties(example_dir2bsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dir2bsim_analyze "/root/repo/build/examples/dir2bsim" "--analyze" "--refs" "5000")
set_tests_properties(example_dir2bsim_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
