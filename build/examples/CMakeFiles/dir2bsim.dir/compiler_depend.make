# Empty compiler generated dependencies file for dir2bsim.
# This may be replaced when dependencies are built.
