file(REMOVE_RECURSE
  "CMakeFiles/dir2bsim.dir/dir2bsim.cpp.o"
  "CMakeFiles/dir2bsim.dir/dir2bsim.cpp.o.d"
  "dir2bsim"
  "dir2bsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir2bsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
