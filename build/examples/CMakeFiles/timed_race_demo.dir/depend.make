# Empty dependencies file for timed_race_demo.
# This may be replaced when dependencies are built.
