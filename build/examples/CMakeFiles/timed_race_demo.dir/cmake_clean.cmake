file(REMOVE_RECURSE
  "CMakeFiles/timed_race_demo.dir/timed_race_demo.cpp.o"
  "CMakeFiles/timed_race_demo.dir/timed_race_demo.cpp.o.d"
  "timed_race_demo"
  "timed_race_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_race_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
