# Empty dependencies file for task_migration.
# This may be replaced when dependencies are built.
