file(REMOVE_RECURSE
  "CMakeFiles/task_migration.dir/task_migration.cpp.o"
  "CMakeFiles/task_migration.dir/task_migration.cpp.o.d"
  "task_migration"
  "task_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
