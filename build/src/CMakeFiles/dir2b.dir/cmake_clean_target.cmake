file(REMOVE_RECURSE
  "libdir2b.a"
)
