
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/dir2b.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/cache_types.cc" "src/CMakeFiles/dir2b.dir/cache/cache_types.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/cache/cache_types.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/dir2b.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/cache/replacement.cc.o.d"
  "/root/repo/src/core/global_state.cc" "src/CMakeFiles/dir2b.dir/core/global_state.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/core/global_state.cc.o.d"
  "/root/repo/src/core/two_bit_protocol.cc" "src/CMakeFiles/dir2b.dir/core/two_bit_protocol.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/core/two_bit_protocol.cc.o.d"
  "/root/repo/src/core/two_bit_tb_protocol.cc" "src/CMakeFiles/dir2b.dir/core/two_bit_tb_protocol.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/core/two_bit_tb_protocol.cc.o.d"
  "/root/repo/src/core/two_bit_wt_protocol.cc" "src/CMakeFiles/dir2b.dir/core/two_bit_wt_protocol.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/core/two_bit_wt_protocol.cc.o.d"
  "/root/repo/src/model/linear.cc" "src/CMakeFiles/dir2b.dir/model/linear.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/model/linear.cc.o.d"
  "/root/repo/src/model/overhead_model.cc" "src/CMakeFiles/dir2b.dir/model/overhead_model.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/model/overhead_model.cc.o.d"
  "/root/repo/src/model/sharing_chain.cc" "src/CMakeFiles/dir2b.dir/model/sharing_chain.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/model/sharing_chain.cc.o.d"
  "/root/repo/src/model/traffic_model.cc" "src/CMakeFiles/dir2b.dir/model/traffic_model.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/model/traffic_model.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/dir2b.dir/net/message.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/net/message.cc.o.d"
  "/root/repo/src/proto/classical.cc" "src/CMakeFiles/dir2b.dir/proto/classical.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/classical.cc.o.d"
  "/root/repo/src/proto/counts.cc" "src/CMakeFiles/dir2b.dir/proto/counts.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/counts.cc.o.d"
  "/root/repo/src/proto/full_map.cc" "src/CMakeFiles/dir2b.dir/proto/full_map.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/full_map.cc.o.d"
  "/root/repo/src/proto/full_map_local.cc" "src/CMakeFiles/dir2b.dir/proto/full_map_local.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/full_map_local.cc.o.d"
  "/root/repo/src/proto/illinois.cc" "src/CMakeFiles/dir2b.dir/proto/illinois.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/illinois.cc.o.d"
  "/root/repo/src/proto/protocol.cc" "src/CMakeFiles/dir2b.dir/proto/protocol.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/protocol.cc.o.d"
  "/root/repo/src/proto/protocol_factory.cc" "src/CMakeFiles/dir2b.dir/proto/protocol_factory.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/protocol_factory.cc.o.d"
  "/root/repo/src/proto/software.cc" "src/CMakeFiles/dir2b.dir/proto/software.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/software.cc.o.d"
  "/root/repo/src/proto/write_once.cc" "src/CMakeFiles/dir2b.dir/proto/write_once.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/proto/write_once.cc.o.d"
  "/root/repo/src/report/bench_cli.cc" "src/CMakeFiles/dir2b.dir/report/bench_cli.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/report/bench_cli.cc.o.d"
  "/root/repo/src/report/json.cc" "src/CMakeFiles/dir2b.dir/report/json.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/report/json.cc.o.d"
  "/root/repo/src/report/report.cc" "src/CMakeFiles/dir2b.dir/report/report.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/report/report.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/dir2b.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/sim/stats.cc.o.d"
  "/root/repo/src/system/func_system.cc" "src/CMakeFiles/dir2b.dir/system/func_system.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/system/func_system.cc.o.d"
  "/root/repo/src/timed/cache_ctrl.cc" "src/CMakeFiles/dir2b.dir/timed/cache_ctrl.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/cache_ctrl.cc.o.d"
  "/root/repo/src/timed/dir_ctrl.cc" "src/CMakeFiles/dir2b.dir/timed/dir_ctrl.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/dir_ctrl.cc.o.d"
  "/root/repo/src/timed/dir_ctrl_base.cc" "src/CMakeFiles/dir2b.dir/timed/dir_ctrl_base.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/dir_ctrl_base.cc.o.d"
  "/root/repo/src/timed/fm_dir_ctrl.cc" "src/CMakeFiles/dir2b.dir/timed/fm_dir_ctrl.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/fm_dir_ctrl.cc.o.d"
  "/root/repo/src/timed/timed_net.cc" "src/CMakeFiles/dir2b.dir/timed/timed_net.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/timed_net.cc.o.d"
  "/root/repo/src/timed/timed_system.cc" "src/CMakeFiles/dir2b.dir/timed/timed_system.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/timed_system.cc.o.d"
  "/root/repo/src/timed/yf_cache_ctrl.cc" "src/CMakeFiles/dir2b.dir/timed/yf_cache_ctrl.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/yf_cache_ctrl.cc.o.d"
  "/root/repo/src/timed/yf_dir_ctrl.cc" "src/CMakeFiles/dir2b.dir/timed/yf_dir_ctrl.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/timed/yf_dir_ctrl.cc.o.d"
  "/root/repo/src/trace/reference.cc" "src/CMakeFiles/dir2b.dir/trace/reference.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/trace/reference.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/dir2b.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/dir2b.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/CMakeFiles/dir2b.dir/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/trace/trace_stats.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/dir2b.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/trace/workloads.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/dir2b.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/util/logging.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/dir2b.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/dir2b.dir/util/random.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/util/random.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/dir2b.dir/util/table.cc.o" "gcc" "src/CMakeFiles/dir2b.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
