# Empty dependencies file for dir2b.
# This may be replaced when dependencies are built.
