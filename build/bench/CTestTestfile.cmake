# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_table_4_1_smoke "/root/repo/build/bench/bench_table_4_1")
set_tests_properties(bench_table_4_1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table_4_2_smoke "/root/repo/build/bench/bench_table_4_2")
set_tests_properties(bench_table_4_2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_sim_validation_smoke "/root/repo/build/bench/bench_sim_validation")
set_tests_properties(bench_sim_validation_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_enhancements_smoke "/root/repo/build/bench/bench_enhancements")
set_tests_properties(bench_enhancements_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scaling_smoke "/root/repo/build/bench/bench_scaling")
set_tests_properties(bench_scaling_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_protocol_comparison_smoke "/root/repo/build/bench/bench_protocol_comparison")
set_tests_properties(bench_protocol_comparison_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
