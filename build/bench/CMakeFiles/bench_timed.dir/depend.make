# Empty dependencies file for bench_timed.
# This may be replaced when dependencies are built.
