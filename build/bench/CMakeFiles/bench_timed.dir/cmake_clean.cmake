file(REMOVE_RECURSE
  "CMakeFiles/bench_timed.dir/bench_timed.cc.o"
  "CMakeFiles/bench_timed.dir/bench_timed.cc.o.d"
  "bench_timed"
  "bench_timed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
