# Empty dependencies file for bench_enhancements.
# This may be replaced when dependencies are built.
