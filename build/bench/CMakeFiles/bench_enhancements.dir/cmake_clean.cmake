file(REMOVE_RECURSE
  "CMakeFiles/bench_enhancements.dir/bench_enhancements.cc.o"
  "CMakeFiles/bench_enhancements.dir/bench_enhancements.cc.o.d"
  "bench_enhancements"
  "bench_enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
