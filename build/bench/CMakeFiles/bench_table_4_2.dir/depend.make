# Empty dependencies file for bench_table_4_2.
# This may be replaced when dependencies are built.
